"""Shared fixtures for the test-suite.

The synthetic-field, grid and distributed-plan *factories* live in
:mod:`tests.fixtures` (one shared library instead of per-suite copies);
this conftest wires them up as pytest fixtures and owns the cross-cutting
test hygiene:

* every test runs against a **fresh plan pool** (autouse fixture below) —
  the pool is process-wide state, and hit/miss statistics leaking between
  test modules made pool assertions order dependent;
* all fixtures deliberately use very small grids (8^3 - 16^3) so that the
  full suite (several hundred tests) runs in a few minutes; correctness of
  the spectral and semi-Lagrangian kernels does not depend on resolution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gradients import (
    gradient_cache_decision_log,
    set_gradient_cache_enabled,
)
from repro.observability.trace import (
    disable_tracing,
    enable_tracing,
    get_trace_recorder,
    tracing_enabled,
)
from repro.runtime.layout import layout_decision_log, set_auto_fraction
from repro.runtime.plan_pool import get_plan_pool, reset_plan_pool
from repro.runtime.workers import set_default_workers
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.transport.kernels import field_source_log, set_default_plan_layout
from repro.transport.sources import set_default_field_source

from tests.fixtures import make_grid, smooth_scalar_field, smooth_velocity_field

#: Factories re-exported for test modules that still import them from here;
#: new code should import from :mod:`tests.fixtures` directly.
__all__ = ["make_grid", "smooth_scalar_field", "smooth_velocity_field"]


# --------------------------------------------------------------------------- #
# process-wide state hygiene
# --------------------------------------------------------------------------- #
@pytest.fixture(autouse=True)
def _fresh_plan_pool():
    """Give every test a clean process-wide plan pool.

    The pool is shared process state: without this, a stepper planned by one
    test is a warm hit in the next, so hit/miss/byte assertions (and any
    test run in isolation vs. in-suite) would depend on execution order.
    Entries and statistics are dropped; the byte budget (which the pressure
    CI leg sets via ``REPRO_PLAN_POOL_BYTES``) is left untouched.  The
    process-wide layout override (the CLI's ``--plan-layout`` path) and the
    auto-layout decision log are reset for the same reason: both are shared
    state a test may set.  The tracing flag and span recorder are restored
    too, so a test that enables tracing never leaks spans into the next.
    """
    trace_was_enabled = tracing_enabled()
    reset_plan_pool()
    set_default_plan_layout(None)
    set_auto_fraction(None)
    set_default_workers(None)
    set_default_field_source(None)
    set_gradient_cache_enabled(None)
    layout_decision_log().reset()
    field_source_log().reset()
    gradient_cache_decision_log().reset()
    yield
    reset_plan_pool()
    set_default_plan_layout(None)
    set_auto_fraction(None)
    set_default_workers(None)
    set_default_field_source(None)
    set_gradient_cache_enabled(None)
    layout_decision_log().reset()
    field_source_log().reset()
    gradient_cache_decision_log().reset()
    if trace_was_enabled:
        enable_tracing()
    else:
        disable_tracing()
    get_trace_recorder().clear()


@pytest.fixture()
def plan_pool():
    """The (freshly reset) shared plan pool, for stats-sensitive tests."""
    return get_plan_pool()


# --------------------------------------------------------------------------- #
# grids and operators
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20160613)


@pytest.fixture(scope="session")
def small_grid() -> Grid:
    """Isotropic 16^3 grid on [0, 2*pi)^3."""
    return make_grid(16)


@pytest.fixture(scope="session")
def medium_grid() -> Grid:
    """Isotropic 12^3 grid (the runtime/parallel suites' workhorse)."""
    return make_grid(12)


@pytest.fixture(scope="session")
def tiny_grid() -> Grid:
    """Isotropic 8^3 grid for the most expensive solver tests."""
    return make_grid(8)


@pytest.fixture(scope="session")
def anisotropic_grid() -> Grid:
    """Anisotropic grid (different point counts per dimension)."""
    return make_grid((8, 12, 10))


@pytest.fixture(scope="session")
def small_operators(small_grid: Grid) -> SpectralOperators:
    return SpectralOperators(small_grid)


# --------------------------------------------------------------------------- #
# synthetic fields
# --------------------------------------------------------------------------- #
@pytest.fixture()
def smooth_field(small_grid: Grid) -> np.ndarray:
    return smooth_scalar_field(small_grid, seed=3)


@pytest.fixture()
def smooth_velocity(small_grid: Grid) -> np.ndarray:
    return smooth_velocity_field(small_grid, seed=11)


@pytest.fixture(scope="session")
def velocity_factory():
    """Factory fixture: ``velocity_factory(grid, seed=..., amplitude=...)``."""
    return smooth_velocity_field
