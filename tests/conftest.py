"""Shared fixtures for the test-suite.

All fixtures deliberately use very small grids (8^3 - 16^3) so that the full
suite (several hundred tests) runs in a few minutes; correctness of the
spectral and semi-Lagrangian kernels does not depend on resolution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20160613)


@pytest.fixture(scope="session")
def small_grid() -> Grid:
    """Isotropic 16^3 grid on [0, 2*pi)^3."""
    return Grid((16, 16, 16))


@pytest.fixture(scope="session")
def tiny_grid() -> Grid:
    """Isotropic 8^3 grid for the most expensive solver tests."""
    return Grid((8, 8, 8))


@pytest.fixture(scope="session")
def anisotropic_grid() -> Grid:
    """Anisotropic grid (different point counts per dimension)."""
    return Grid((8, 12, 10))


@pytest.fixture(scope="session")
def small_operators(small_grid: Grid) -> SpectralOperators:
    return SpectralOperators(small_grid)


def smooth_scalar_field(grid: Grid, seed: int = 0, modes: int = 2) -> np.ndarray:
    """Band-limited random smooth scalar field (exactly representable)."""
    rng_local = np.random.default_rng(seed)
    x1, x2, x3 = grid.coordinates(sparse=True)
    field = np.zeros(grid.shape, dtype=grid.dtype)
    for _ in range(4):
        k = rng_local.integers(1, modes + 1, size=3)
        phase = rng_local.uniform(0, 2 * np.pi, size=3)
        amp = rng_local.uniform(0.2, 1.0)
        field = field + amp * (
            np.sin(k[0] * x1 + phase[0])
            * np.sin(k[1] * x2 + phase[1])
            * np.sin(k[2] * x3 + phase[2])
        )
    return field


def smooth_vector_field(grid: Grid, seed: int = 0, modes: int = 2) -> np.ndarray:
    """Band-limited random smooth vector field."""
    return np.stack(
        [smooth_scalar_field(grid, seed=seed + comp, modes=modes) for comp in range(3)],
        axis=0,
    )


@pytest.fixture()
def smooth_field(small_grid: Grid) -> np.ndarray:
    return smooth_scalar_field(small_grid, seed=3)


@pytest.fixture()
def smooth_velocity(small_grid: Grid) -> np.ndarray:
    return 0.5 * smooth_vector_field(small_grid, seed=11)
