"""Tests for the budget-aware auto layout policy (repro.runtime.layout)."""

import numpy as np
import pytest

from repro.runtime.layout import (
    AUTO_FRACTION_ENV_VAR,
    DEFAULT_AUTO_FRACTION,
    auto_streaming_fraction,
    layout_decision_log,
    select_layout,
)
from repro.runtime.plan_pool import configure_plan_pool
from repro.transport.kernels import (
    LeanStencilPlan,
    StreamingStencilPlan,
    build_stencil_plan,
    plan_layout_cache_token,
    projected_stencil_nbytes,
    resolve_plan_layout,
    set_default_plan_layout,
)

from tests.fixtures import random_points


@pytest.fixture()
def restore_pool_budget():
    yield
    configure_plan_pool(None)  # re-read the environment default


class TestSelectLayoutPolicy:
    def test_streaming_when_lean_exceeds_budget_fraction(self):
        decision = select_layout(
            num_points=1000, projected_lean_bytes=36_000, budget_bytes=50_000, fraction=0.5
        )
        assert decision.layout == "streaming"
        assert "exceed" in decision.reason

    def test_lean_when_projection_fits(self):
        decision = select_layout(
            num_points=1000, projected_lean_bytes=36_000, budget_bytes=100_000, fraction=0.5
        )
        assert decision.layout == "lean"

    def test_threshold_boundary_is_exclusive(self):
        # exactly fraction * budget still fits; one byte more streams
        at = select_layout(1, projected_lean_bytes=500, budget_bytes=1000, fraction=0.5)
        over = select_layout(1, projected_lean_bytes=501, budget_bytes=1000, fraction=0.5)
        assert at.layout == "lean"
        assert over.layout == "streaming"

    def test_disabled_pool_keeps_lean(self):
        # budget 0 disables pooling: there is no byte budget to respect
        decision = select_layout(10**9, projected_lean_bytes=36 * 10**9, budget_bytes=0)
        assert decision.layout == "lean"
        assert "disabled" in decision.reason

    def test_fraction_env_override_and_validation(self, monkeypatch):
        monkeypatch.delenv(AUTO_FRACTION_ENV_VAR, raising=False)
        assert auto_streaming_fraction() == DEFAULT_AUTO_FRACTION
        monkeypatch.setenv(AUTO_FRACTION_ENV_VAR, "0.25")
        assert auto_streaming_fraction() == 0.25
        assert select_layout(1, 300, 1000).layout == "streaming"  # > 0.25 * 1000
        for bad in ("half", "0", "-0.5", "1.5"):
            monkeypatch.setenv(AUTO_FRACTION_ENV_VAR, bad)
            with pytest.raises(ValueError, match=AUTO_FRACTION_ENV_VAR):
                auto_streaming_fraction()

    def test_decisions_are_logged_with_inputs(self):
        log = layout_decision_log()
        assert log.total == 0  # the autouse fixture resets the log
        select_layout(100, 3600, 1000, fraction=0.5)
        select_layout(5, 180, 10**9, fraction=0.5)
        assert log.total == 2
        assert log.counts() == {"lean": 1, "streaming": 1}
        last = log.recent()[-1]
        assert last.layout == "lean"
        assert last.num_points == 5
        assert last.budget_bytes == 10**9
        select_layout(7, 1, 1, record=False)  # diagnostic query: not logged
        assert log.total == 2
        log.reset()
        assert log.total == 0 and log.counts() == {}


class TestAutoLayoutIntegration:
    """The acceptance pin: ``auto`` picks streaming/lean by pool budget."""

    POINTS = 4096  # projected lean bytes: 4096 * 36 = 147456

    def _build(self):
        coords = random_points(self.POINTS, seed=3, low=0.0, high=12.0)
        return build_stencil_plan((12, 12, 12), coords, "catmull_rom", layout="auto")

    def test_small_budget_streams(self, restore_pool_budget):
        lean_bytes = projected_stencil_nbytes(self.POINTS, "catmull_rom", "lean")
        configure_plan_pool(int(lean_bytes / DEFAULT_AUTO_FRACTION) - 1)
        assert resolve_plan_layout(self.POINTS, layout="auto") == "streaming"
        assert isinstance(self._build(), StreamingStencilPlan)

    def test_large_budget_stays_lean(self, restore_pool_budget):
        lean_bytes = projected_stencil_nbytes(self.POINTS, "catmull_rom", "lean")
        configure_plan_pool(int(lean_bytes / DEFAULT_AUTO_FRACTION) + 1)
        assert resolve_plan_layout(self.POINTS, layout="auto") == "lean"
        assert isinstance(self._build(), LeanStencilPlan)

    def test_auto_builds_gather_bitwise_like_explicit(self, restore_pool_budget):
        rng = np.random.default_rng(7)
        field = rng.standard_normal((12, 12, 12)).reshape(1, -1)
        coords = random_points(self.POINTS, seed=3, low=0.0, high=12.0)
        from repro.transport.kernels import execute_stencil_plan

        reference = execute_stencil_plan(
            field, build_stencil_plan((12, 12, 12), coords, "catmull_rom", layout="fat")
        )
        for budget in (1, 10**9):  # streaming and lean resolutions
            configure_plan_pool(budget)
            plan = build_stencil_plan((12, 12, 12), coords, "catmull_rom", layout="auto")
            np.testing.assert_array_equal(execute_stencil_plan(field, plan), reference)

    def test_explicit_layouts_opt_out_of_the_policy(self, restore_pool_budget):
        configure_plan_pool(1)  # a budget that would force streaming
        coords = random_points(64, seed=5, low=0.0, high=12.0)
        plan = build_stencil_plan((12, 12, 12), coords, "catmull_rom", layout="lean")
        assert isinstance(plan, LeanStencilPlan)
        assert layout_decision_log().total == 0  # the policy was never asked


class TestCacheToken:
    def test_concrete_layout_is_its_own_token(self):
        set_default_plan_layout("streaming")
        assert plan_layout_cache_token() == "streaming"

    def test_auto_token_carries_budget_and_fraction(self, restore_pool_budget):
        set_default_plan_layout("auto")
        configure_plan_pool(1000)
        token_small = plan_layout_cache_token()
        configure_plan_pool(2000)
        token_large = plan_layout_cache_token()
        assert token_small[0] == "auto"
        assert token_small != token_large  # budget changes re-key pooled plans

    def test_projection_matches_built_plan_nbytes(self):
        coords = random_points(1500, seed=9, low=0.0, high=12.0)
        for layout in ("fat", "lean", "streaming"):
            plan = build_stencil_plan((12, 12, 12), coords, "catmull_rom", layout=layout)
            assert projected_stencil_nbytes(1500, "catmull_rom", layout) == plan.nbytes
        linear = build_stencil_plan((12, 12, 12), coords, "linear", layout="fat")
        assert projected_stencil_nbytes(1500, "linear", "fat") == linear.nbytes
