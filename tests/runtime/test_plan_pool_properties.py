"""Hypothesis property tests for the plan pool's accounting invariants.

Model-based randomized checks of the invariants every consumer relies on:

* **exact byte accounting** — ``current_bytes`` equals the sum of the
  stored entries' ``nbytes`` after *any* interleaving of inserts, warm
  hits, budget changes and the evictions they trigger;
* **LRU discipline** — the pool's key order always matches a reference
  model (an ``OrderedDict`` with move-to-end on hit), so the entry evicted
  under pressure is provably the least recently used one;
* **budget safety** — the running total never exceeds the budget, oversize
  values are handed out but never stored, and a zero budget stores nothing.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.plan_pool import PlanPool


class _Sized:
    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes


#: One pool operation: ("get", key, nbytes) or ("budget", max_bytes).
_OPS = st.one_of(
    st.tuples(st.just("get"), st.integers(0, 7), st.integers(0, 60)),
    st.tuples(st.just("budget"), st.integers(0, 150)),
)


def _apply_to_model(model: "OrderedDict[tuple, int]", op, budget: int) -> int:
    """Reference LRU semantics; returns the (possibly updated) budget."""
    if op[0] == "budget":
        budget = op[1]
    else:
        _, key_id, size = op
        key = ("prop", key_id)
        if key in model:
            model.move_to_end(key)
        elif size <= budget:
            model[key] = size
    while sum(model.values()) > budget:
        model.popitem(last=False)
    return budget


class TestPoolInvariants:
    @given(ops=st.lists(_OPS, max_size=60), initial_budget=st.integers(0, 150))
    @settings(max_examples=60, deadline=None)
    def test_byte_accounting_and_lru_order_under_random_ops(self, ops, initial_budget):
        pool = PlanPool(max_bytes=initial_budget)
        model: "OrderedDict[tuple, int]" = OrderedDict()
        budget = initial_budget
        for op in ops:
            if op[0] == "budget":
                pool.set_max_bytes(op[1])
            else:
                _, key_id, size = op
                value = pool.get(("prop", key_id), lambda size=size: _Sized(size))
                assert value.nbytes >= 0  # oversize values are still returned
            budget = _apply_to_model(model, op, budget)

            # invariant 1: bytes_used == sum(entry.nbytes), exactly
            assert pool.current_bytes == sum(model.values())
            assert pool.current_bytes <= pool.max_bytes
            # invariant 2: LRU order matches the reference model
            assert pool.keys() == tuple(model)
            # invariant 3: the stats gauges agree with the contents
            stats = pool.stats
            assert stats.entries == len(model)
            assert stats.current_bytes == pool.current_bytes
            assert stats.peak_bytes >= stats.current_bytes
            # invariant 4: per-tag gauges partition the pool-wide gauges
            tags = pool.stats_by_tag()
            assert sum(s.current_bytes for s in tags.values()) == pool.current_bytes
            assert sum(s.entries for s in tags.values()) == stats.entries

    @given(ops=st.lists(_OPS, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_counter_balance(self, ops):
        """hits + misses == lookups, and every miss either stored, was
        rejected oversize, or was later evicted."""
        pool = PlanPool(max_bytes=100)
        lookups = 0
        for op in ops:
            if op[0] == "budget":
                pool.set_max_bytes(op[1])
            else:
                pool.get(("prop", op[1]), lambda op=op: _Sized(op[2]))
                lookups += 1
            stats = pool.stats
            assert stats.hits + stats.misses == lookups
            assert (
                stats.misses
                == stats.entries + stats.evictions + stats.oversize_rejections
            )

    @given(sizes=st.lists(st.integers(1, 40), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_zero_budget_never_stores(self, sizes):
        pool = PlanPool(max_bytes=0)
        for index, size in enumerate(sizes):
            value = pool.get(("prop", index), lambda size=size: _Sized(size))
            assert value.nbytes == size
        assert len(pool) == 0
        assert pool.current_bytes == 0
        assert pool.stats.misses == len(sizes)
