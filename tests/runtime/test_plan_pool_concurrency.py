"""Thread-safety of the plan pool under concurrent service submitters.

The job service fans registration jobs out over worker threads that all
share the process-wide pool, so these tests hammer the pool from many
threads and assert the properties the service relies on:

* no lost hits: N threads x M warm lookups count exactly N*M hits;
* single-flight builds: concurrent misses of one key run the builder once,
  every other thread is charged a hit;
* byte accounting stays exact (``bytes_used == sum(nbytes)``, never above
  the budget) across concurrent inserts and evictions
  (:meth:`~repro.runtime.plan_pool.PlanPool.validate_accounting`);
* the layout decision log never drops concurrent records.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.runtime.layout import LayoutDecision, LayoutDecisionLog
from repro.runtime.plan_pool import PlanPool

NUM_THREADS = 8
LOOKUPS_PER_THREAD = 50


def _run_threads(worker, count=NUM_THREADS):
    """Start *count* threads on *worker* simultaneously; re-raise failures."""
    barrier = threading.Barrier(count)
    errors = []

    def wrapped(index):
        barrier.wait()
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestNoLostHits:
    def test_warm_key_counts_every_hit(self):
        pool = PlanPool(max_bytes=1 << 20)
        key = ("scatter-plan", "warm")
        value = np.zeros(64)
        pool.get(key, lambda: value)  # prewarm: 1 miss

        def worker(_index):
            for _ in range(LOOKUPS_PER_THREAD):
                got = pool.get(key, lambda: pytest.fail("builder must not rerun"))
                assert got is value

        _run_threads(worker)
        stats = pool.stats
        assert stats.hits == NUM_THREADS * LOOKUPS_PER_THREAD
        assert stats.misses == 1
        assert pool.stats_by_tag()["scatter-plan"].hits == stats.hits
        pool.validate_accounting()


class TestSingleFlight:
    def test_concurrent_misses_build_once(self):
        pool = PlanPool(max_bytes=1 << 20)
        key = ("semi-lagrangian-departure", "cold")
        builds = []
        build_gate = threading.Event()

        def builder():
            builds.append(threading.get_ident())
            build_gate.wait(5.0)  # hold every other thread in the flight
            return np.ones(128)

        results = []

        def worker(index):
            if index == NUM_THREADS - 1:
                # let the other threads pile up on the in-flight build first
                build_gate.set()
            results.append(pool.get(key, builder))

        _run_threads(worker)
        assert len(builds) == 1
        assert all(result is results[0] for result in results)
        stats = pool.stats
        assert stats.misses == 1
        assert stats.hits == NUM_THREADS - 1  # waiters are served warm
        pool.validate_accounting()

    def test_failed_build_releases_waiters_who_retry(self):
        pool = PlanPool(max_bytes=1 << 20)
        key = ("scatter-plan", "flaky")
        attempts = []

        def builder():
            attempts.append(None)
            if len(attempts) == 1:
                raise RuntimeError("transient build failure")
            return np.ones(16)

        outcomes = []

        def worker(_index):
            try:
                outcomes.append(pool.get(key, builder))
            except RuntimeError:
                outcomes.append(None)

        _run_threads(worker)
        succeeded = [o for o in outcomes if o is not None]
        assert len(succeeded) == NUM_THREADS - 1  # exactly the owner failed
        assert len(attempts) == 2
        pool.validate_accounting()

    def test_oversize_single_flight_still_serves_waiters(self):
        pool = PlanPool(max_bytes=64)  # every build is oversize
        key = ("scatter-plan", "huge")
        builds = []

        def builder():
            builds.append(None)
            return np.ones(1024)

        results = []
        _run_threads(lambda _i: results.append(pool.get(key, builder)))
        assert len(builds) >= 1
        assert all(r.shape == (1024,) for r in results)
        stats = pool.stats
        assert stats.hits + stats.misses == NUM_THREADS
        assert stats.current_bytes == 0  # nothing stored
        pool.validate_accounting()


class TestAccountingUnderPressure:
    def test_bytes_used_equals_sum_nbytes_with_evictions(self):
        # budget fits only a few entries, so concurrent inserts constantly
        # evict each other; the accounting must survive any interleaving
        entry_bytes = 8 * 256
        pool = PlanPool(max_bytes=3 * entry_bytes)

        def worker(index):
            for round_ in range(LOOKUPS_PER_THREAD):
                key = ("scatter-plan", index % 2, round_ % 7)
                value = pool.get(key, lambda: np.zeros(256))
                assert value.nbytes == entry_bytes

        _run_threads(worker)
        summary = pool.validate_accounting()  # raises on any drift
        assert summary["current_bytes"] <= pool.max_bytes
        stats = pool.stats
        assert stats.hits + stats.misses == NUM_THREADS * LOOKUPS_PER_THREAD
        # per-tag gauges partition the pool-wide ones exactly
        by_tag = pool.stats_by_tag()
        assert sum(s.current_bytes for s in by_tag.values()) == stats.current_bytes
        assert sum(s.entries for s in by_tag.values()) == stats.entries

    def test_concurrent_distinct_tags_partition_exactly(self):
        pool = PlanPool(max_bytes=1 << 20)
        tags = ("semi-lagrangian-departure", "scatter-plan", "untimed")

        def worker(index):
            tag = tags[index % len(tags)]
            for round_ in range(LOOKUPS_PER_THREAD):
                pool.get((tag, index, round_ % 5), lambda: np.zeros(32))

        _run_threads(worker)
        pool.validate_accounting()
        stats = pool.stats
        by_tag = pool.stats_by_tag()
        assert sum(s.hits for s in by_tag.values()) == stats.hits
        assert sum(s.misses for s in by_tag.values()) == stats.misses

    def test_shrinking_budget_mid_hammer_keeps_accounting(self):
        pool = PlanPool(max_bytes=1 << 20)

        def worker(index):
            for round_ in range(LOOKUPS_PER_THREAD):
                pool.get(("scatter-plan", index, round_), lambda: np.zeros(128))
                if index == 0 and round_ == LOOKUPS_PER_THREAD // 2:
                    pool.set_max_bytes(4 * 128 * 8)

        _run_threads(worker)
        summary = pool.validate_accounting()
        assert summary["current_bytes"] <= pool.max_bytes


class TestLayoutLogConcurrency:
    def test_concurrent_records_are_never_lost(self):
        log = LayoutDecisionLog(recent=4)
        per_thread = 100

        def worker(index):
            layout = "lean" if index % 2 == 0 else "streaming"
            for _ in range(per_thread):
                log.record(
                    LayoutDecision(
                        layout=layout,
                        num_points=1,
                        projected_lean_bytes=36,
                        budget_bytes=1024,
                        fraction=0.5,
                        reason="hammer",
                    )
                )

        with ThreadPoolExecutor(max_workers=NUM_THREADS) as executor:
            list(executor.map(worker, range(NUM_THREADS)))
        counts = log.counts()
        assert log.total == NUM_THREADS * per_thread
        assert counts["lean"] == (NUM_THREADS // 2) * per_thread
        assert counts["streaming"] == (NUM_THREADS - NUM_THREADS // 2) * per_thread
        assert len(log.recent()) == 4
