"""Tests for the shared plan pool (repro.runtime.plan_pool)."""

import numpy as np
import pytest

from repro.core.optim.continuation import BetaContinuation
from repro.core.optim.gauss_newton import SolverOptions
from repro.core.optim.multilevel import MultilevelRegistration
from repro.core.problem import RegistrationProblem
from repro.data.synthetic import synthetic_registration_problem
from repro.runtime.plan_pool import (
    DEFAULT_POOL_BYTES,
    POOL_BYTES_ENV_VAR,
    PlanPool,
    array_fingerprint,
    configure_plan_pool,
    get_plan_pool,
    reset_plan_pool,
)
from repro.spectral.grid import Grid
from repro.transport.kernels import build_stencil_plan
from repro.transport.semi_lagrangian import SemiLagrangianStepper
from repro.transport.solvers import TransportSolver

from tests.fixtures import smooth_velocity_field


class _Sized:
    def __init__(self, nbytes):
        self.nbytes = nbytes


class TestPlanPoolCore:
    def test_hit_miss_counters(self):
        pool = PlanPool(max_bytes=1000)
        builds = []
        value = pool.get("a", lambda: builds.append(1) or _Sized(10))
        assert pool.get("a", lambda: builds.append(1) or _Sized(10)) is value
        assert len(builds) == 1
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_byte_accounting_matches_stored_nbytes(self):
        """The pool's running total is exactly the sum of stored plan nbytes."""
        pool = PlanPool(max_bytes=10**9)
        rng = np.random.default_rng(0)
        shape = (8, 8, 8)
        plans = []
        for seed in range(4):
            coords = rng.uniform(0, 8, size=(3, 100 + seed))
            plan = pool.get(
                ("stencil", seed),
                lambda c=coords: build_stencil_plan(shape, c, "catmull_rom"),
            )
            plans.append(plan)
        assert pool.current_bytes == sum(plan.nbytes for plan in plans)
        assert pool.stats.entries == 4

    def test_lru_eviction_order(self):
        pool = PlanPool(max_bytes=25)
        pool.get("a", lambda: _Sized(10))
        pool.get("b", lambda: _Sized(10))
        pool.get("c", lambda: _Sized(10))  # exceeds 25 -> evict "a" (LRU)
        assert "a" not in pool
        assert "b" in pool and "c" in pool
        assert pool.stats.evictions == 1
        assert pool.current_bytes == 20

    def test_recently_used_entry_survives_eviction(self):
        pool = PlanPool(max_bytes=25)
        pool.get("a", lambda: _Sized(10))
        pool.get("b", lambda: _Sized(10))
        pool.get("a", lambda: _Sized(10))  # touch "a" -> "b" becomes LRU
        pool.get("c", lambda: _Sized(10))
        assert "a" in pool and "c" in pool
        assert "b" not in pool

    def test_oversize_entry_is_returned_but_not_stored(self):
        pool = PlanPool(max_bytes=25)
        pool.get("small", lambda: _Sized(10))
        big = pool.get("big", lambda: _Sized(100))
        assert big.nbytes == 100
        assert "big" not in pool
        assert "small" in pool  # the pool contents survive the oversize build
        assert pool.stats.oversize_rejections == 1
        assert pool.current_bytes == 10

    def test_zero_budget_disables_caching(self):
        pool = PlanPool(max_bytes=0)
        builds = []
        pool.get("a", lambda: builds.append(1) or _Sized(10))
        pool.get("a", lambda: builds.append(1) or _Sized(10))
        assert len(builds) == 2
        assert pool.stats.misses == 2
        assert pool.current_bytes == 0

    def test_env_var_sets_default_budget(self, monkeypatch):
        monkeypatch.setenv(POOL_BYTES_ENV_VAR, "12345")
        assert PlanPool().max_bytes == 12345
        monkeypatch.delenv(POOL_BYTES_ENV_VAR)
        assert PlanPool().max_bytes == DEFAULT_POOL_BYTES

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            PlanPool(max_bytes=-1)

    def test_configure_shrink_evicts_to_fit(self, plan_pool):
        pool = get_plan_pool()
        configure_plan_pool(100)
        pool.get("a", lambda: _Sized(40))
        pool.get("b", lambda: _Sized(40))
        configure_plan_pool(50)
        assert pool.current_bytes <= 50
        assert "b" in pool and "a" not in pool
        configure_plan_pool(None)  # back to the environment default

    def test_stats_delta_subtraction(self):
        pool = PlanPool(max_bytes=1000)
        pool.get("a", lambda: _Sized(10))
        before = pool.stats
        pool.get("a", lambda: _Sized(10))
        delta = pool.stats - before
        assert delta.hits == 1 and delta.misses == 0

    def test_array_fingerprint_content_sensitivity(self):
        a = np.arange(12, dtype=np.float64)
        assert array_fingerprint(a) == array_fingerprint(a.copy())
        assert array_fingerprint(a) != array_fingerprint(a + 1e-16)
        assert array_fingerprint(a) != array_fingerprint(a.astype(np.float32))
        assert array_fingerprint(a) != array_fingerprint(a.reshape(3, 4))


class TestStepperPooling:
    def test_same_velocity_planned_once(self, plan_pool):
        grid = Grid((12, 12, 12))
        velocity = smooth_velocity_field(grid, seed=101, amplitude=0.4)
        SemiLagrangianStepper(grid, velocity, dt=0.25)
        before = plan_pool.stats
        stepper = SemiLagrangianStepper(grid, velocity, dt=0.25)
        delta = plan_pool.stats - before
        assert delta.hits == 1 and delta.misses == 0
        # the warm plan is the real one: stepping works and matches a rebuild
        field = np.random.default_rng(0).standard_normal(grid.shape)
        cold = SemiLagrangianStepper(grid, velocity, dt=0.25, use_plan_pool=False)
        np.testing.assert_array_equal(stepper.step(field), cold.step(field))

    def test_one_sided_precomputed_data_rejected(self, plan_pool):
        grid = Grid((12, 12, 12))
        velocity = smooth_velocity_field(grid, seed=105, amplitude=0.4)
        full = SemiLagrangianStepper(grid, velocity, dt=0.25)
        with pytest.raises(ValueError, match="provided together"):
            SemiLagrangianStepper(
                grid, velocity, dt=0.25, departure_points=full.departure_points
            )
        with pytest.raises(ValueError, match="provided together"):
            SemiLagrangianStepper(
                grid, velocity, dt=0.25, departure_plan=full.departure_plan
            )

    def test_key_separates_velocity_dt_method(self, plan_pool):
        grid = Grid((12, 12, 12))
        velocity = smooth_velocity_field(grid, seed=102, amplitude=0.4)
        SemiLagrangianStepper(grid, velocity, dt=0.25)
        before = plan_pool.stats
        SemiLagrangianStepper(grid, -velocity, dt=0.25)  # backward direction
        SemiLagrangianStepper(grid, velocity, dt=0.5)
        delta = plan_pool.stats - before
        assert delta.hits == 0 and delta.misses == 2

    def test_transport_solver_plan_reuses_pool(self, plan_pool):
        grid = Grid((12, 12, 12))
        solver = TransportSolver(grid, num_time_steps=4)
        velocity = smooth_velocity_field(grid, seed=103, amplitude=0.4)
        solver.plan(velocity)
        before = plan_pool.stats
        plan = solver.plan(velocity)
        delta = plan_pool.stats - before
        assert delta.hits == 2 and delta.misses == 0  # forward + backward
        assert plan.nbytes > 0

    def test_linearize_reuses_line_search_plan(self, plan_pool):
        """evaluate_objective + linearize of the same velocity plan once."""
        synthetic = synthetic_registration_problem(12)
        problem = RegistrationProblem(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
        )
        velocity = smooth_velocity_field(synthetic.grid, seed=104, amplitude=0.2)
        problem.evaluate_objective(velocity)
        before = plan_pool.stats_by_tag()["semi-lagrangian-departure"]
        problem.linearize(velocity)
        # scoped to the stepper tag: linearize additionally builds the
        # iterate's grad-cache entry (a miss under the "grad-cache" tag)
        delta = plan_pool.stats_by_tag()["semi-lagrangian-departure"] - before
        assert delta.misses == 0
        assert delta.hits >= 2


class TestTagStats:
    """Per-entry-kind accounting (stats_by_tag), incl. the stepper entries."""

    def test_stepper_entries_are_tagged(self, plan_pool):
        grid = Grid((12, 12, 12))
        velocity = smooth_velocity_field(grid, seed=106, amplitude=0.4)
        SemiLagrangianStepper(grid, velocity, dt=0.25)
        SemiLagrangianStepper(grid, velocity, dt=0.25)
        stats = plan_pool.stats_by_tag()["semi-lagrangian-departure"]
        assert stats.misses == 1 and stats.hits == 1 and stats.entries == 1
        assert stats.current_bytes == plan_pool.current_bytes

    def test_tag_gauges_sum_to_pool_gauges(self):
        pool = PlanPool(max_bytes=1000)
        pool.get(("a-tag", 1), lambda: _Sized(10))
        pool.get(("b-tag", 1), lambda: _Sized(20))
        pool.get(17, lambda: _Sized(5))  # key without a leading string tag
        tags = pool.stats_by_tag()
        assert set(tags) == {"a-tag", "b-tag", "untagged"}
        assert sum(s.current_bytes for s in tags.values()) == pool.current_bytes
        assert sum(s.entries for s in tags.values()) == len(pool)
        assert sum(s.misses for s in tags.values()) == pool.stats.misses

    def test_eviction_and_oversize_attributed_to_their_tag(self):
        pool = PlanPool(max_bytes=25)
        pool.get(("a", 1), lambda: _Sized(10))
        pool.get(("b", 1), lambda: _Sized(10))
        pool.get(("b", 2), lambda: _Sized(10))  # evicts ("a", 1)
        pool.get(("c", 1), lambda: _Sized(100))  # oversize, never stored
        tags = pool.stats_by_tag()
        assert tags["a"].evictions == 1
        assert tags["a"].entries == 0 and tags["a"].current_bytes == 0
        assert tags["b"].entries == 2 and tags["b"].current_bytes == 20
        assert tags["c"].oversize_rejections == 1 and tags["c"].entries == 0

    def test_key_tag_resolution(self):
        from repro.runtime.plan_pool import key_tag

        assert key_tag(("scatter-plan", "x")) == "scatter-plan"
        assert key_tag(42) == "untagged"
        assert key_tag(()) == "untagged"
        assert key_tag((1, "late-string")) == "untagged"

    def test_reset_clears_tag_stats(self, plan_pool):
        plan_pool.get(("a", 1), lambda: _Sized(10))
        reset_plan_pool()
        assert plan_pool.stats_by_tag() == {}


class TestWarmReuseAcrossSolves:
    def _options(self):
        return SolverOptions(
            gradient_tolerance=1e-2, max_newton_iterations=3, max_krylov_iterations=6
        )

    def test_multilevel_run_has_pool_hits(self, plan_pool):
        synthetic = synthetic_registration_problem(16)
        result = MultilevelRegistration(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
            num_levels=2,
            options=self._options(),
        ).run()
        assert result.plan_pool is not None
        assert result.plan_pool.hits > 0
        assert result.plan_pool.misses > 0

    def test_multilevel_plans_each_velocity_once_per_grid(self, plan_pool):
        """Every pool miss is a distinct (grid, velocity) content key."""
        synthetic = synthetic_registration_problem(16)
        MultilevelRegistration(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
            num_levels=2,
            options=self._options(),
        ).run()
        keys = [k for k in plan_pool.keys() if k[0] == "semi-lagrangian-departure"]
        assert len(keys) == len(set(keys))
        stepper = plan_pool.stats_by_tag()["semi-lagrangian-departure"]
        assert stepper.misses == len(keys) + stepper.evictions

    def test_continuation_run_has_pool_hits(self, plan_pool):
        synthetic = synthetic_registration_problem(12)
        problem = RegistrationProblem(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
        )
        result = BetaContinuation(
            problem,
            options=self._options(),
            initial_beta=1e-1,
            target_beta=1e-2,
            reduction=0.1,
        ).run()
        assert result.plan_pool is not None
        assert result.plan_pool.hits > 0

    def test_eviction_under_pressure_keeps_solves_correct(self, plan_pool):
        """A tiny budget forces evictions but never changes results."""
        configure_plan_pool(200_000)  # far below one 16^3 transport plan pair
        try:
            synthetic = synthetic_registration_problem(12)
            result_small = MultilevelRegistration(
                grid=synthetic.grid,
                reference=synthetic.reference,
                template=synthetic.template,
                num_levels=2,
                options=self._options(),
            ).run()
            stats = get_plan_pool().stats
            assert stats.evictions > 0 or stats.oversize_rejections > 0
            assert get_plan_pool().current_bytes <= 200_000
            reset_plan_pool()
            configure_plan_pool(None)
            result_default = MultilevelRegistration(
                grid=synthetic.grid,
                reference=synthetic.reference,
                template=synthetic.template,
                num_levels=2,
                options=self._options(),
            ).run()
            np.testing.assert_array_equal(result_small.velocity, result_default.velocity)
        finally:
            configure_plan_pool(None)
