"""Tests for the unified worker-pool manager (repro.runtime.workers)."""

import os

import numpy as np
import pytest

from repro.runtime.workers import (
    FFT_WORKERS_ENV_VAR,
    INTERP_WORKERS_ENV_VAR,
    IO_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
    get_executor,
    get_subsystem_executor,
    resolve_workers,
    set_default_workers,
    shutdown_executors,
)
from repro.spectral.backends import _resolve_workers as resolve_fft_workers
from repro.spectral.grid import Grid
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.kernels import build_stencil_plan, execute_stencil_plan

from tests.fixtures import smooth_scalar_field


@pytest.fixture(autouse=True)
def clean_policy(monkeypatch):
    """Isolate every test from ambient env vars and the process default."""
    for var in (
        WORKERS_ENV_VAR,
        FFT_WORKERS_ENV_VAR,
        INTERP_WORKERS_ENV_VAR,
        IO_WORKERS_ENV_VAR,
    ):
        monkeypatch.delenv(var, raising=False)
    set_default_workers(None)
    yield
    set_default_workers(None)


class TestResolution:
    def test_subsystem_defaults(self):
        assert resolve_workers("fft") == max(1, os.cpu_count() or 1)
        assert resolve_workers("interp") == 1  # serial unless opted in
        assert resolve_workers("io") == 1  # one background tile loader

    def test_shared_env_var_applies_to_every_subsystem(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert resolve_workers("fft") == 3
        assert resolve_workers("interp") == 3
        assert resolve_workers("io") == 3

    def test_io_env_overrides_shared(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(IO_WORKERS_ENV_VAR, "2")
        assert resolve_workers("io") == 2
        assert resolve_workers("fft") == 3

    def test_per_subsystem_env_overrides_shared(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(INTERP_WORKERS_ENV_VAR, "2")
        monkeypatch.setenv(FFT_WORKERS_ENV_VAR, "5")
        assert resolve_workers("interp") == 2
        assert resolve_workers("fft") == 5

    def test_process_default_between_shared_and_subsystem(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        set_default_workers(4)  # the CLI --workers path
        assert resolve_workers("interp") == 4
        monkeypatch.setenv(INTERP_WORKERS_ENV_VAR, "2")
        assert resolve_workers("interp") == 2

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(FFT_WORKERS_ENV_VAR, "5")
        assert resolve_workers("fft", explicit=2) == 2

    def test_counts_clamped_to_at_least_one(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        assert resolve_workers("interp") == 1
        assert resolve_workers("fft", explicit=-3) == 1

    def test_unknown_subsystem_rejected(self):
        with pytest.raises(ValueError, match="unknown worker subsystem"):
            resolve_workers("gpu")

    def test_fft_backend_resolution_is_the_runtime_policy(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        assert resolve_fft_workers(None) == 2
        monkeypatch.setenv(FFT_WORKERS_ENV_VAR, "6")
        assert resolve_fft_workers(None) == 6
        assert resolve_fft_workers(4) == 4


class TestExecutors:
    def test_executors_shared_per_width(self):
        assert get_executor(2) is get_executor(2)
        assert get_executor(2) is not get_executor(3)

    def test_executor_runs_work(self):
        results = list(get_executor(2).map(lambda x: x * x, range(8)))
        assert results == [0, 1, 4, 9, 16, 25, 36, 49]


class TestSubsystemExecutors:
    """The dedicated per-subsystem pools behind the prefetching pipeline.

    Prefetch futures must never share a pool with the gather chunk tasks
    that wait on them (a width-1 shared pool would deadlock), so the ``io``
    loader gets its own executor keyed by subsystem name.
    """

    def test_one_executor_per_subsystem(self):
        assert get_subsystem_executor("io") is get_subsystem_executor("io")
        assert get_subsystem_executor("io") is not get_subsystem_executor("interp")

    def test_distinct_from_width_shared_pools(self):
        assert get_subsystem_executor("io") is not get_executor(1)

    def test_unknown_subsystem_rejected(self):
        with pytest.raises(ValueError, match="unknown worker subsystem"):
            get_subsystem_executor("gpu")

    def test_runs_work(self):
        future = get_subsystem_executor("io").submit(lambda: 7 * 6)
        assert future.result() == 42

    def test_shutdown_clears_the_cache(self):
        first = get_subsystem_executor("io")
        shutdown_executors()
        second = get_subsystem_executor("io")
        assert second is not first
        assert second.submit(lambda: 1).result() == 1


class TestThreadedStencilExecution:
    def test_threaded_gather_bitwise_matches_serial(self):
        shape = (16, 16, 16)
        rng = np.random.default_rng(5)
        flat = rng.standard_normal(shape).reshape(1, -1)
        coords = rng.uniform(0, 16, size=(3, 30000))
        plan = build_stencil_plan(shape, coords, "catmull_rom")
        serial = execute_stencil_plan(flat, plan, workers=1)
        for workers in (2, 4):
            threaded = execute_stencil_plan(flat, plan, chunk=1024, workers=workers)
            np.testing.assert_array_equal(threaded, serial)

    def test_env_var_threads_the_interpolator(self, monkeypatch):
        """REPRO_INTERP_WORKERS threads the production gather path, bitwise."""
        grid = Grid((16, 16, 16))
        field = smooth_scalar_field(grid, seed=6)
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 2 * np.pi, size=(3, 20000))
        interp = PeriodicInterpolator(grid, "catmull_rom", backend="numpy")
        serial = interp(field, points)
        monkeypatch.setenv(INTERP_WORKERS_ENV_VAR, "4")
        np.testing.assert_array_equal(interp(field, points), serial)
