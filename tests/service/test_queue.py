"""Submission-queue semantics: FIFO, cancellation, batch claiming, close."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service.jobs import Job, JobCancelledError, JobStatus, TransportJobSpec
from repro.service.queue import SubmissionQueue


class _NullService:
    """Stand-in submitter side: cancellation goes straight to the queue."""

    def __init__(self, queue):
        self.queue = queue

    def _cancel(self, job):
        return self.queue.cancel(job)


def _transport_spec(seed=0, shape=(8, 8, 8)):
    rng = np.random.default_rng(seed)
    velocity = rng.standard_normal((3, *shape))
    moving = rng.standard_normal(shape)
    return TransportJobSpec(velocity=velocity, moving=moving)


@pytest.fixture()
def queue():
    return SubmissionQueue()


@pytest.fixture()
def service(queue):
    return _NullService(queue)


class TestFifoAndClaim:
    def test_claim_returns_oldest_first(self, queue, service):
        jobs = [Job(_transport_spec(seed=i), service) for i in range(3)]
        for job in jobs:
            queue.submit(job)
        first = queue.claim_batch(max_batch=1)
        assert first == [jobs[0]]
        assert first[0].status is JobStatus.RUNNING
        assert first[0].record.started_at is not None

    def test_claim_batches_compatible_jobs(self, queue, service):
        spec = _transport_spec(seed=7)
        same = [Job(spec, service) for _ in range(3)]
        other = Job(_transport_spec(seed=8), service)  # different velocity
        queue.submit(same[0])
        queue.submit(other)
        queue.submit(same[1])
        queue.submit(same[2])
        batch = queue.claim_batch(max_batch=4)
        assert batch == [same[0], same[1], same[2]]
        assert all(job.record.batch_size == 3 for job in batch)
        # the incompatible job stays queued, in order
        assert queue.claim_batch(max_batch=4) == [other]

    def test_max_batch_caps_the_merge(self, queue, service):
        spec = _transport_spec(seed=3)
        jobs = [Job(spec, service) for _ in range(5)]
        for job in jobs:
            queue.submit(job)
        assert len(queue.claim_batch(max_batch=2)) == 2
        assert len(queue.claim_batch(max_batch=2)) == 2
        assert len(queue.claim_batch(max_batch=2)) == 1

    def test_claim_timeout_returns_none(self, queue):
        assert queue.claim_batch(max_batch=1, timeout=0.05) is None


class TestCancellation:
    def test_cancel_queued_job(self, queue, service):
        job = Job(_transport_spec(), service)
        queue.submit(job)
        assert job.cancel() is True
        assert job.status is JobStatus.CANCELLED
        assert job.done
        with pytest.raises(JobCancelledError):
            job.result(timeout=1.0)
        # the queue no longer hands it out
        assert queue.claim_batch(max_batch=1, timeout=0.05) is None

    def test_cancel_claimed_job_is_refused(self, queue, service):
        job = Job(_transport_spec(), service)
        queue.submit(job)
        (claimed,) = queue.claim_batch(max_batch=1)
        assert claimed is job
        assert job.cancel() is False
        assert job.status is JobStatus.RUNNING

    def test_cancelled_job_never_reaches_a_waiting_worker(self, queue, service):
        results = []
        worker = threading.Thread(
            target=lambda: results.append(queue.claim_batch(max_batch=1)), daemon=True
        )
        job = Job(_transport_spec(), service)
        queue.submit(job)
        assert job.cancel() is True
        worker.start()
        queue.close()
        worker.join(timeout=5.0)
        assert results == [None]


class TestClose:
    def test_close_refuses_new_submissions(self, queue, service):
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.submit(Job(_transport_spec(), service))

    def test_close_drains_queued_jobs_first(self, queue, service):
        job = Job(_transport_spec(), service)
        queue.submit(job)
        queue.close()
        assert queue.claim_batch(max_batch=1) == [job]
        assert queue.claim_batch(max_batch=1) is None

    def test_close_releases_blocked_workers(self, queue):
        results = []
        worker = threading.Thread(
            target=lambda: results.append(queue.claim_batch(max_batch=1)), daemon=True
        )
        worker.start()
        queue.close()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert results == [None]
