"""Submission-queue semantics: FIFO, fairness, cancellation, batching, close."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service.jobs import (
    JOB_CLASS_ATLAS,
    JOB_CLASS_INTERACTIVE,
    Job,
    JobCancelledError,
    JobStatus,
    TransportJobSpec,
)
from repro.service.queue import DEFAULT_CLASS_WEIGHTS, SubmissionQueue


class _NullService:
    """Stand-in submitter side: cancellation goes straight to the queue."""

    def __init__(self, queue):
        self.queue = queue

    def _cancel(self, job, force=False):
        return self.queue.cancel(job)


def _transport_spec(seed=0, shape=(8, 8, 8), job_class=JOB_CLASS_INTERACTIVE):
    rng = np.random.default_rng(seed)
    velocity = rng.standard_normal((3, *shape))
    moving = rng.standard_normal(shape)
    return TransportJobSpec(velocity=velocity, moving=moving, job_class=job_class)


@pytest.fixture()
def queue():
    return SubmissionQueue()


@pytest.fixture()
def service(queue):
    return _NullService(queue)


class TestFifoAndClaim:
    def test_claim_returns_oldest_first(self, queue, service):
        jobs = [Job(_transport_spec(seed=i), service) for i in range(3)]
        for job in jobs:
            queue.submit(job)
        first = queue.claim_batch(max_batch=1)
        assert first == [jobs[0]]
        assert first[0].status is JobStatus.RUNNING
        assert first[0].record.started_at is not None

    def test_claim_batches_compatible_jobs(self, queue, service):
        spec = _transport_spec(seed=7)
        same = [Job(spec, service) for _ in range(3)]
        other = Job(_transport_spec(seed=8), service)  # different velocity
        queue.submit(same[0])
        queue.submit(other)
        queue.submit(same[1])
        queue.submit(same[2])
        batch = queue.claim_batch(max_batch=4)
        assert batch == [same[0], same[1], same[2]]
        assert all(job.record.batch_size == 3 for job in batch)
        # the incompatible job stays queued, in order
        assert queue.claim_batch(max_batch=4) == [other]

    def test_max_batch_caps_the_merge(self, queue, service):
        spec = _transport_spec(seed=3)
        jobs = [Job(spec, service) for _ in range(5)]
        for job in jobs:
            queue.submit(job)
        assert len(queue.claim_batch(max_batch=2)) == 2
        assert len(queue.claim_batch(max_batch=2)) == 2
        assert len(queue.claim_batch(max_batch=2)) == 1

    def test_claim_timeout_returns_none(self, queue):
        assert queue.claim_batch(max_batch=1, timeout=0.05) is None


class TestCancellation:
    def test_cancel_queued_job(self, queue, service):
        job = Job(_transport_spec(), service)
        queue.submit(job)
        assert job.cancel() is True
        assert job.status is JobStatus.CANCELLED
        assert job.done
        with pytest.raises(JobCancelledError):
            job.result(timeout=1.0)
        # the queue no longer hands it out
        assert queue.claim_batch(max_batch=1, timeout=0.05) is None

    def test_cancel_claimed_job_is_refused(self, queue, service):
        job = Job(_transport_spec(), service)
        queue.submit(job)
        (claimed,) = queue.claim_batch(max_batch=1)
        assert claimed is job
        assert job.cancel() is False
        assert job.status is JobStatus.RUNNING

    def test_cancelled_job_never_reaches_a_waiting_worker(self, queue, service):
        results = []
        worker = threading.Thread(
            target=lambda: results.append(queue.claim_batch(max_batch=1)), daemon=True
        )
        job = Job(_transport_spec(), service)
        queue.submit(job)
        assert job.cancel() is True
        worker.start()
        queue.close()
        worker.join(timeout=5.0)
        assert results == [None]


class TestWeightedFairness:
    """Stride scheduling across job classes: bursts cannot starve singles."""

    def _submit_population(self, queue, service, num_atlas, num_interactive, atlas_first=True):
        atlas = [
            Job(_transport_spec(seed=100 + i, job_class=JOB_CLASS_ATLAS), service)
            for i in range(num_atlas)
        ]
        interactive = [
            Job(_transport_spec(seed=200 + i), service) for i in range(num_interactive)
        ]
        for job in (atlas + interactive) if atlas_first else (interactive + atlas):
            queue.submit(job)
        return atlas, interactive

    def _drain_order(self, queue):
        order = []
        while True:
            batch = queue.claim_batch(max_batch=1, timeout=0.05)
            if batch is None:
                return order
            order.extend(batch)

    def test_interactive_jobs_cut_through_an_atlas_burst(self, queue, service):
        """4 interactive jobs behind a 20-job burst are all served early."""
        _, interactive = self._submit_population(queue, service, 20, 4)
        order = self._drain_order(queue)
        positions = [order.index(job) for job in interactive]
        # weight 4 vs 1: at most one burst job is claimed before each
        # interactive one — all four are out within the first 5 claims
        assert max(positions) <= 4, f"interactive starved: positions {positions}"

    def test_saturated_classes_interleave_by_weight(self, queue, service):
        """Two full queues are served ~4:1 (the configured weights)."""
        self._submit_population(queue, service, 40, 40, atlas_first=False)
        first = self._drain_order(queue)[:25]
        interactive = sum(1 for job in first if job.job_class == JOB_CLASS_INTERACTIVE)
        assert interactive == 20, "expected a 4:1 interactive:atlas claim ratio"

    def test_idle_class_reenters_at_live_virtual_time(self, queue, service):
        """Credit saved while idle must not buy a retaliatory burst."""
        atlas, _ = self._submit_population(queue, service, 10, 0)
        for _ in range(6):  # the burst runs alone; its virtual time advances
            queue.claim_batch(max_batch=1)
        late = [Job(_transport_spec(seed=300 + i), service) for i in range(2)]
        for job in late:
            queue.submit(job)
        next_four = [queue.claim_batch(max_batch=1)[0] for _ in range(4)]
        # the late interactive jobs are served promptly (no starvation) but
        # do not pre-empt everything either (no saved-credit burst)
        assert set(late) <= set(next_four)
        assert any(job.job_class == JOB_CLASS_ATLAS for job in next_four)

    def test_constructor_weights_override_defaults(self, service):
        flipped = SubmissionQueue(
            class_weights={JOB_CLASS_ATLAS: 4.0, JOB_CLASS_INTERACTIVE: 1.0}
        )
        assert flipped.class_weight(JOB_CLASS_ATLAS) == 4.0
        assert flipped.class_weight(JOB_CLASS_INTERACTIVE) == 1.0
        assert flipped.class_weight("unknown-class") == 1.0

    def test_env_weights_layer_between_defaults_and_constructor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_CLASS_WEIGHTS", "interactive=7,extra=2.5")
        queue = SubmissionQueue()
        assert queue.class_weight(JOB_CLASS_INTERACTIVE) == 7.0
        assert queue.class_weight("extra") == 2.5
        assert queue.class_weight(JOB_CLASS_ATLAS) == DEFAULT_CLASS_WEIGHTS[JOB_CLASS_ATLAS]
        explicit = SubmissionQueue(class_weights={"interactive": 9.0})
        assert explicit.class_weight(JOB_CLASS_INTERACTIVE) == 9.0

    def test_non_positive_weight_is_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SubmissionQueue(class_weights={"interactive": 0.0})

    def test_depths_report_per_class(self, queue, service):
        self._submit_population(queue, service, 3, 2)
        assert queue.depths() == {JOB_CLASS_ATLAS: 3, JOB_CLASS_INTERACTIVE: 2}
        queue.claim_batch(max_batch=1)
        depths = queue.depths()
        assert sum(depths.values()) == 4

    def test_batch_merging_stays_within_one_class(self, queue, service):
        shared = _transport_spec(seed=9)
        burst = _transport_spec(seed=9, job_class=JOB_CLASS_ATLAS)
        interactive = [Job(shared, service) for _ in range(2)]
        atlas = Job(burst, service)
        queue.submit(interactive[0])
        queue.submit(atlas)
        queue.submit(interactive[1])
        batch = queue.claim_batch(max_batch=4)
        assert batch == interactive, "a batch never mixes job classes"


class TestCancelHammer:
    """S3 regression: the CANCELLED flip happens inside the queue lock."""

    def test_concurrent_cancel_and_claim_never_disagree(self, queue, service):
        num_jobs = 200
        jobs = [Job(_transport_spec(seed=i), service) for i in range(num_jobs)]
        for job in jobs:
            queue.submit(job)

        cancelled, claimed = set(), []
        cancelled_lock = threading.Lock()
        start = threading.Barrier(7)  # 4 cancellers + 2 claimers + main

        def cancel_worker(slice_of_jobs):
            start.wait()
            for job in slice_of_jobs:
                if job.cancel():
                    with cancelled_lock:
                        cancelled.add(job.job_id)

        def claim_worker(sink):
            start.wait()
            while True:
                batch = queue.claim_batch(max_batch=1)
                if batch is None:
                    return
                # a successfully cancelled job must never reach a worker
                assert batch[0].status is JobStatus.RUNNING
                sink.extend(batch)

        sinks = [[], []]
        threads = [
            threading.Thread(target=cancel_worker, args=(jobs[i::4],))
            for i in range(4)
        ] + [threading.Thread(target=claim_worker, args=(sink,)) for sink in sinks]
        for thread in threads:
            thread.start()
        start.wait()
        queue.close()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()

        claimed = [job.job_id for sink in sinks for job in sink]
        assert len(claimed) == len(set(claimed)), "a job was claimed twice"
        assert not cancelled & set(claimed), "a job was both cancelled and claimed"
        assert cancelled | set(claimed) == {job.job_id for job in jobs}, (
            "every job must end up exactly one of cancelled or claimed"
        )
        for job in jobs:
            if job.job_id in cancelled:
                assert job.status is JobStatus.CANCELLED and job.done
            else:
                assert job.status is JobStatus.RUNNING

    def test_cancel_race_outcomes_are_consistent(self, queue, service):
        """Whoever wins the race, the loser observes a settled state."""
        for trial in range(50):
            job = Job(_transport_spec(seed=trial), service)
            queue.submit(job)
            outcome = {}
            claimer = threading.Thread(
                target=lambda: outcome.update(batch=queue.claim_batch(max_batch=1))
            )
            claimer.start()
            won = job.cancel()
            sentinel = None
            if won:
                # unblock the claimer, which must never have seen the job
                sentinel = Job(_transport_spec(seed=1000 + trial), service)
                queue.submit(sentinel)
            claimer.join(timeout=10)
            assert not claimer.is_alive()
            if won:
                assert job.status is JobStatus.CANCELLED and job.done
                assert outcome["batch"] == [sentinel]
            else:
                assert outcome["batch"] == [job]
                assert job.status is JobStatus.RUNNING


class TestClose:
    def test_close_refuses_new_submissions(self, queue, service):
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.submit(Job(_transport_spec(), service))

    def test_close_drains_queued_jobs_first(self, queue, service):
        job = Job(_transport_spec(), service)
        queue.submit(job)
        queue.close()
        assert queue.claim_batch(max_batch=1) == [job]
        assert queue.claim_batch(max_batch=1) is None

    def test_close_releases_blocked_workers(self, queue):
        results = []
        worker = threading.Thread(
            target=lambda: results.append(queue.claim_batch(max_batch=1)), daemon=True
        )
        worker.start()
        queue.close()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert results == [None]
