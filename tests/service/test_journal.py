"""Durable job journal: spec round-trips, replay, torn tails, compaction."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.optim.gauss_newton import SolverOptions
from repro.service.jobs import (
    JOB_CLASS_ATLAS,
    Job,
    RegistrationJobSpec,
    TransportJobSpec,
)
from repro.service.journal import (
    SPEC_SCHEMA,
    SPEC_SCHEMA_VERSION,
    JobJournal,
    MalformedSpecError,
    spec_from_dict,
    spec_to_dict,
)

from tests.fixtures import make_grid, smooth_scalar_field, smooth_velocity_field


class _NullService:
    def _cancel(self, job, force=False):
        return False


def _registration_spec(**overrides):
    grid = make_grid(8)
    defaults = dict(
        template=smooth_scalar_field(grid, seed=1),
        reference=smooth_scalar_field(grid, seed=2),
        beta=3e-2,
        regularization="h2",
        incompressible=True,
        num_time_steps=3,
        smooth_sigma=0.5,
        options=SolverOptions(max_newton_iterations=2, gradient_tolerance=5e-2),
        grid=grid,
        job_class=JOB_CLASS_ATLAS,
    )
    defaults.update(overrides)
    return RegistrationJobSpec(**defaults)


def _transport_spec(seed=5):
    grid = make_grid(8)
    return TransportJobSpec(
        velocity=smooth_velocity_field(grid, seed=seed),
        moving=smooth_scalar_field(grid, seed=seed + 40),
        num_time_steps=3,
        num_tasks=2,
        grid=grid,
    )


def _job(spec, job_id=None):
    return Job(spec, _NullService(), job_id=job_id)


class TestSpecRoundTrip:
    def test_registration_spec_round_trips_bitwise(self):
        spec = _registration_spec()
        doc = json.loads(json.dumps(spec_to_dict(spec)))  # force a JSON trip
        back = spec_from_dict(doc)
        np.testing.assert_array_equal(spec.template, back.template)
        np.testing.assert_array_equal(spec.reference, back.reference)
        assert back.template.dtype == spec.template.dtype
        assert back.beta == spec.beta
        assert back.regularization == "h2"
        assert back.incompressible is True
        assert back.num_time_steps == 3
        assert back.job_class == JOB_CLASS_ATLAS
        assert back.grid == spec.grid
        assert back.options.max_newton_iterations == 2
        assert back.options.gradient_tolerance == 5e-2

    def test_transport_spec_round_trips_bitwise(self):
        spec = _transport_spec()
        back = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        np.testing.assert_array_equal(spec.velocity, back.velocity)
        np.testing.assert_array_equal(spec.moving, back.moving)
        assert back.num_tasks == 2
        assert back.grid == spec.grid

    def test_none_options_and_grid_survive(self):
        spec = _registration_spec(options=None, grid=None)
        back = spec_from_dict(spec_to_dict(spec))
        assert back.options is None
        assert back.grid is None

    def test_line_search_settings_survive(self):
        from repro.core.optim.line_search import ArmijoLineSearch

        spec = _registration_spec(
            options=SolverOptions(line_search=ArmijoLineSearch(max_evaluations=3))
        )
        back = spec_from_dict(spec_to_dict(spec))
        assert back.options.line_search.max_evaluations == 3

    def test_cancel_token_is_never_serialized(self):
        from repro.runtime.cancellation import CancelToken

        spec = _registration_spec(
            options=SolverOptions(cancel_token=CancelToken())
        )
        doc = spec_to_dict(spec)
        assert "cancel_token" not in doc["spec"]["options"]
        assert spec_from_dict(doc).options.cancel_token is None


class TestMalformedSpecs:
    @pytest.mark.parametrize(
        "mutate",
        [
            lambda doc: doc.update(schema="other-schema"),
            lambda doc: doc.update(schema_version=99),
            lambda doc: doc.update(kind="teleport"),
            lambda doc: doc.update(spec="not-an-object"),
            lambda doc: doc.update(job_class=""),
            lambda doc: doc["spec"].update(velocity={"__ndarray__": True}),
            lambda doc: doc["spec"]["velocity"].update(data="@@not-base64@@"),
            lambda doc: doc["spec"]["velocity"].update(shape=[1, 1]),
        ],
        ids=[
            "schema",
            "version",
            "kind",
            "spec-not-object",
            "empty-job-class",
            "ndarray-missing-fields",
            "bad-base64",
            "byte-length-mismatch",
        ],
    )
    def test_bad_documents_raise_malformed(self, mutate):
        doc = spec_to_dict(_transport_spec())
        mutate(doc)
        with pytest.raises(MalformedSpecError):
            spec_from_dict(doc)

    def test_non_dict_raises(self):
        with pytest.raises(MalformedSpecError, match="JSON object"):
            spec_from_dict([1, 2, 3])

    def test_schema_constants_in_document(self):
        doc = spec_to_dict(_transport_spec())
        assert doc["schema"] == SPEC_SCHEMA
        assert doc["schema_version"] == SPEC_SCHEMA_VERSION


class TestJournalReplay:
    def test_submitted_without_terminal_is_pending(self, tmp_path):
        journal = JobJournal(tmp_path)
        job = _job(_transport_spec())
        journal.record_submitted(job)
        pending = journal.replay()
        assert [entry.job_id for entry in pending] == [job.job_id]
        back = pending[0].spec()
        np.testing.assert_array_equal(back.velocity, job.spec.velocity)

    def test_terminal_records_clear_pending(self, tmp_path):
        journal = JobJournal(tmp_path)
        done, failed, cancelled, live = (_job(_transport_spec(seed=s)) for s in range(4))
        for job in (done, failed, cancelled, live):
            journal.record_submitted(job)
        done._complete(None)
        failed._fail("boom", "tb")
        cancelled._cancelled()
        for job in (done, failed, cancelled):
            journal.record_terminal(job)
        assert [entry.job_id for entry in journal.replay()] == [live.job_id]

    def test_replay_preserves_submission_order(self, tmp_path):
        journal = JobJournal(tmp_path)
        jobs = [_job(_transport_spec(seed=s)) for s in range(4)]
        for job in jobs:
            journal.record_submitted(job)
        jobs[1]._complete(None)
        journal.record_terminal(jobs[1])
        pending = journal.replay()
        assert [e.job_id for e in pending] == [jobs[0].job_id, jobs[2].job_id, jobs[3].job_id]

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        safe = _job(_transport_spec(seed=1))
        journal.record_submitted(safe)
        journal.close()
        # simulate a crash mid-append: a torn, newline-less final record
        (segment,) = sorted(tmp_path.glob("segment-*.jsonl"))
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro.service-journal", "event": "subm')
        assert [e.job_id for e in JobJournal(tmp_path).replay()] == [safe.job_id]

    def test_foreign_schema_lines_are_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        job = _job(_transport_spec())
        journal.record_submitted(job)
        journal.close()
        (segment,) = sorted(tmp_path.glob("segment-*.jsonl"))
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": "someone-else", "event": "x"}) + "\n")
        assert [e.job_id for e in JobJournal(tmp_path).replay()] == [job.job_id]

    def test_unfsynced_journal_still_replays(self, tmp_path):
        journal = JobJournal(tmp_path, fsync_on_commit=False)
        job = _job(_transport_spec())
        journal.record_submitted(job)
        journal.close()
        assert len(JobJournal(tmp_path).replay()) == 1


class TestSegmentsAndCompaction:
    def test_appends_rotate_segments(self, tmp_path):
        journal = JobJournal(tmp_path, max_segment_bytes=1024)
        for seed in range(3):
            journal.record_submitted(_job(_transport_spec(seed=seed)))
        journal.close()
        assert len(list(tmp_path.glob("segment-*.jsonl"))) >= 2
        assert len(JobJournal(tmp_path).replay()) == 3

    def test_compact_drops_dead_segments_keeps_pending(self, tmp_path):
        journal = JobJournal(tmp_path, max_segment_bytes=1024)
        jobs = [_job(_transport_spec(seed=s)) for s in range(4)]
        for job in jobs:
            journal.record_submitted(job)
        for job in jobs[:3]:
            job._complete(None)
            journal.record_terminal(job)
        bytes_before = sum(p.stat().st_size for p in tmp_path.glob("segment-*.jsonl"))
        pending = journal.compact()
        assert [e.job_id for e in pending] == [jobs[3].job_id]
        segments = list(tmp_path.glob("segment-*.jsonl"))
        assert len(segments) == 1
        assert segments[0].stat().st_size < bytes_before
        # the compacted journal replays identically (second-crash safety)
        assert [e.job_id for e in JobJournal(tmp_path).replay()] == [jobs[3].job_id]

    def test_compact_empty_journal(self, tmp_path):
        assert JobJournal(tmp_path).compact() == []

    def test_append_after_compact_lands_in_fresh_segment(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_submitted(_job(_transport_spec(seed=1)))
        journal.compact()
        late = _job(_transport_spec(seed=2))
        journal.record_submitted(late)
        journal.close()
        ids = {e.job_id for e in JobJournal(tmp_path).replay()}
        assert late.job_id in ids and len(ids) == 2

    def test_stats_shape(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_submitted(_job(_transport_spec()))
        stats = journal.stats()
        assert stats["segments"] == 1
        assert stats["bytes"] > 0
        assert stats["fsync_on_commit"] is True

    def test_rejects_non_positive_segment_size(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            JobJournal(tmp_path, max_segment_bytes=0)
