"""HTTP front round-trips: submit, status, cancel, stats, error paths."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.optim.gauss_newton import SolverOptions
from repro.core.optim.line_search import ArmijoLineSearch
from repro.service import RegistrationService, spec_to_dict
from repro.service.http import serve_http
from repro.service.jobs import JobStatus, RegistrationJobSpec, TransportJobSpec

from tests.fixtures import make_grid, smooth_scalar_field, smooth_velocity_field


def _transport_spec(grid, seed=5, num_time_steps=3):
    return TransportJobSpec(
        velocity=smooth_velocity_field(grid, seed=seed),
        moving=smooth_scalar_field(grid, seed=seed + 40),
        num_time_steps=num_time_steps,
        num_tasks=2,
        grid=grid,
    )


def _endless_registration_spec(grid, seed=5):
    """A registration that can only end by cancellation.

    Unreachable tolerances plus a tiny fixed line-search step (always
    Armijo-accepted while the gradient is O(1), never stalling into
    ``line_search_failure``) keep the solve iterating until cancelled.
    """
    return RegistrationJobSpec(
        template=smooth_scalar_field(grid, seed=seed),
        reference=smooth_scalar_field(grid, seed=seed + 11),
        optimizer="gradient_descent",
        gauss_newton=False,
        options=SolverOptions(
            gradient_tolerance=1e-30,
            absolute_gradient_tolerance=1e-300,
            max_newton_iterations=1_000_000,
            line_search=ArmijoLineSearch(initial_step=1e-6),
        ),
    )


@pytest.fixture()
def served():
    """A live service + HTTP front on a free port; torn down afterwards."""
    with RegistrationService(num_workers=1, max_batch=2) as service:
        server = serve_http(service, 0)
        try:
            yield service, f"http://127.0.0.1:{server.port}"
        finally:
            server.shutdown()


def _request(url, method="GET", body=None):
    """(status, parsed JSON body) of one request; errors are not raised."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def _wait_for(predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestSubmitAndStatus:
    def test_submit_runs_the_job_and_reports_done(self, served):
        service, base = served
        grid = make_grid(8)
        status, submitted = _request(
            f"{base}/jobs", "POST", spec_to_dict(_transport_spec(grid))
        )
        assert status == 202
        job_id = submitted["job_id"]
        assert submitted["kind"] == "transport"
        assert submitted["job_class"] == "interactive"
        service.job(job_id).wait(timeout=120)
        status, doc = _request(f"{base}/jobs/{job_id}")
        assert status == 200
        assert doc["status"] == "done"
        artifact = doc["artifact"]
        assert artifact["schema"] == "repro.service-job"
        assert artifact["job"]["job_id"] == job_id
        assert artifact["job"]["metrics"]["batch_size"] >= 1

    def test_http_submission_matches_in_process_submission_bitwise(self, served):
        service, base = served
        grid = make_grid(8)
        spec = _transport_spec(grid, seed=21)
        direct = service.submit_transport(spec).result(timeout=120)
        _, submitted = _request(f"{base}/jobs", "POST", spec_to_dict(spec))
        job = service.job(submitted["job_id"])
        np.testing.assert_array_equal(direct, job.result(timeout=120))

    def test_unknown_job_is_404(self, served):
        _, base = served
        status, doc = _request(f"{base}/jobs/nope-00000000")
        assert status == 404
        assert "unknown job id" in doc["error"]

    def test_unknown_route_is_404(self, served):
        _, base = served
        assert _request(f"{base}/elsewhere")[0] == 404
        assert _request(f"{base}/elsewhere", "POST", {})[0] == 404
        assert _request(f"{base}/elsewhere", "DELETE")[0] == 404


class TestMalformedSubmissions:
    def test_invalid_json_is_400(self, served):
        _, base = served
        request = urllib.request.Request(
            f"{base}/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "not valid JSON" in json.load(excinfo.value)["error"]

    def test_empty_body_is_400(self, served):
        _, base = served
        status, doc = _request(f"{base}/jobs", "POST", None)
        assert status == 400
        assert "body" in doc["error"]

    def test_wrong_schema_is_400_with_message(self, served):
        _, base = served
        status, doc = _request(f"{base}/jobs", "POST", {"schema": "bogus"})
        assert status == 400
        assert "repro.service-jobspec" in doc["error"]

    def test_truncated_array_payload_is_400(self, served):
        _, base = served
        document = spec_to_dict(_transport_spec(make_grid(8)))
        document["spec"]["velocity"]["shape"] = [1]
        status, doc = _request(f"{base}/jobs", "POST", document)
        assert status == 400
        assert "bytes" in doc["error"]

    def test_malformed_submission_creates_no_job(self, served):
        service, base = served
        before = service.service_stats()["jobs_submitted"]
        _request(f"{base}/jobs", "POST", {"schema": "bogus"})
        assert service.service_stats()["jobs_submitted"] == before


class TestCancelOverHTTP:
    def test_delete_cancels_a_running_job(self, served):
        service, base = served
        grid = make_grid(8)
        _, submitted = _request(
            f"{base}/jobs", "POST", spec_to_dict(_transport_spec(grid, num_time_steps=2000))
        )
        job = service.job(submitted["job_id"])
        assert _wait_for(lambda: job.status is JobStatus.RUNNING)
        status, doc = _request(f"{base}/jobs/{job.job_id}", "DELETE")
        assert status == 200
        assert doc["cancelled"] is True
        assert job.wait(timeout=60)
        assert job.status is JobStatus.CANCELLED
        status, doc = _request(f"{base}/jobs/{job.job_id}")
        assert doc["status"] == "cancelled"
        assert doc["artifact"]["job"]["error"] is None

    def test_delete_cancels_a_running_registration(self, served):
        """The acceptance path: a RUNNING registration cancelled over HTTP
        stops at the next Newton iteration and lands CANCELLED, not FAILED."""
        service, base = served
        _, submitted = _request(
            f"{base}/jobs", "POST", spec_to_dict(_endless_registration_spec(make_grid(8)))
        )
        job = service.job(submitted["job_id"])
        assert _wait_for(lambda: job.status is JobStatus.RUNNING)
        time.sleep(0.05)  # let the Newton loop actually start iterating
        status, doc = _request(f"{base}/jobs/{job.job_id}", "DELETE")
        assert status == 200
        assert doc["cancelled"] is True
        assert job.wait(timeout=60), "the solve must stop at a safe point"
        assert job.status is JobStatus.CANCELLED
        _, doc = _request(f"{base}/jobs/{job.job_id}")
        assert doc["status"] == "cancelled"
        assert doc["artifact"]["job"]["error"] is None

    def test_delete_of_finished_job_reports_not_cancelled(self, served):
        service, base = served
        _, submitted = _request(
            f"{base}/jobs", "POST", spec_to_dict(_transport_spec(make_grid(8)))
        )
        service.job(submitted["job_id"]).wait(timeout=120)
        status, doc = _request(f"{base}/jobs/{submitted['job_id']}", "DELETE")
        assert status == 200
        assert doc["cancelled"] is False
        assert doc["status"] == "done"

    def test_delete_unknown_job_is_404(self, served):
        _, base = served
        assert _request(f"{base}/jobs/nope-00000000", "DELETE")[0] == 404


class TestStats:
    def test_stats_reports_service_and_observability(self, served):
        service, base = served
        _, submitted = _request(
            f"{base}/jobs", "POST", spec_to_dict(_transport_spec(make_grid(8)))
        )
        service.job(submitted["job_id"]).wait(timeout=120)
        status, doc = _request(f"{base}/stats")
        assert status == 200
        assert doc["jobs_submitted"] >= 1
        assert "interactive" in doc["queue_depths"]
        assert doc["observability"]["schema"] == "repro.observability-snapshot"
