"""The stable top-level facade: everything a downstream user imports."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.optim.gauss_newton import SolverOptions
from repro.data.synthetic import synthetic_registration_problem


class TestFacadeExports:
    def test_public_names(self):
        for name in (
            "register",
            "RegistrationConfig",
            "RegistrationResult",
            "RegistrationSolver",
            "RegistrationService",
            "SolverOptions",
            "Grid",
            "Job",
            "JobStatus",
            "submit",
            "gather",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_config_identity(self):
        from repro.config import RegistrationConfig

        assert repro.RegistrationConfig is RegistrationConfig


class TestDefaultServiceHelpers:
    @pytest.fixture(autouse=True)
    def _clean_default_service(self):
        from repro.service import shutdown_default_service

        shutdown_default_service()
        yield
        shutdown_default_service()

    def test_submit_and_gather_roundtrip(self):
        problem = synthetic_registration_problem(8)
        options = SolverOptions(max_newton_iterations=1, max_krylov_iterations=3)
        jobs = [
            repro.submit(problem.template, problem.reference, options=options)
            for _ in range(2)
        ]
        results = repro.gather(jobs, timeout=120)
        assert len(results) == 2
        np.testing.assert_array_equal(results[0].velocity, results[1].velocity)
        assert all(job.status is repro.JobStatus.DONE for job in jobs)

    def test_default_service_is_a_singleton(self):
        from repro.service import default_service

        assert default_service() is default_service()
