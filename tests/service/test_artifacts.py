"""Artifact-write regressions: numpy metrics, tmp litter, id collisions."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.service.artifacts import artifact_path, job_artifact, write_job_artifact
from repro.service.jobs import Job, TransportJobSpec, json_safe, new_job_id


class _NullService:
    def _cancel(self, job, force=False):
        return False


def _job(seed=0):
    rng = np.random.default_rng(seed)
    spec = TransportJobSpec(
        velocity=rng.standard_normal((3, 8, 8, 8)),
        moving=rng.standard_normal((8, 8, 8)),
    )
    return Job(spec, _NullService())


class TestJsonSafe:
    def test_numpy_scalars_become_builtins(self):
        coerced = json_safe(
            {
                "res": np.float64(1.5),
                "count": np.int64(3),
                "flag": np.bool_(True),
                "arr": np.arange(3),
            }
        )
        assert coerced == {"res": 1.5, "count": 3, "flag": True, "arr": [0, 1, 2]}
        assert type(coerced["res"]) is float
        assert type(coerced["count"]) is int
        assert type(coerced["flag"]) is bool
        json.dumps(coerced)  # must not raise

    def test_nested_structures_and_tuples(self):
        coerced = json_safe({"a": [(np.int32(1), {"b": np.float32(2.0)})], 3: None})
        assert coerced == {"a": [[1, {"b": 2.0}]], "3": None}
        json.dumps(coerced)

    def test_unknown_objects_fall_back_to_str(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert json_safe(Opaque()) == "<opaque>"


class TestNumpyMetricsRegression:
    """S2: numpy scalars in job metrics must never fail the artifact write."""

    def test_numpy_metrics_serialize_cleanly(self, tmp_path):
        job = _job()
        job.record.metrics = {
            "relative_residual": np.float64(0.125),
            "ghost_bytes": np.int64(4096),
            "diffeomorphic": np.bool_(True),
            "per_rank": np.array([1, 2, 3]),
            "nested": {"norms": (np.float32(1.0), np.float64(2.0))},
        }
        job._complete(None)
        path = write_job_artifact(tmp_path, job)
        doc = json.loads(path.read_text())
        metrics = doc["job"]["metrics"]
        assert metrics["relative_residual"] == 0.125
        assert metrics["ghost_bytes"] == 4096
        assert metrics["diffeomorphic"] is True
        assert metrics["per_rank"] == [1, 2, 3]
        assert metrics["nested"]["norms"] == [1.0, 2.0]

    def test_successful_write_leaves_no_tmp_litter(self, tmp_path):
        job = _job()
        job._complete(None)
        write_job_artifact(tmp_path, job)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_replace_removes_the_tmp_file(self, tmp_path, monkeypatch):
        """S2: any failure after the tmp file exists must unlink it."""
        import repro.service.artifacts as artifacts_module

        def exploding_replace(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr(artifacts_module.os, "replace", exploding_replace)
        job = _job()
        job._complete(None)
        with pytest.raises(OSError, match="simulated"):
            write_job_artifact(tmp_path, job)
        assert list(tmp_path.glob("*.tmp")) == [], "tmp litter leaked on failure"
        assert not artifact_path(tmp_path, job).exists()

    def test_rewrite_is_atomic_over_an_existing_artifact(self, tmp_path):
        job = _job()
        job._complete(None)
        first = write_job_artifact(tmp_path, job)
        job.record.metrics = {"round": 2}
        second = write_job_artifact(tmp_path, job)
        assert first == second
        assert json.loads(second.read_text())["job"]["metrics"]["round"] == 2
        assert len(list(tmp_path.glob("job-*.json"))) == 1


class TestJobIdCollisions:
    """S1: ids must be unique across processes and artifact paths stable."""

    def test_ids_are_unique_within_a_process(self):
        ids = {new_job_id() for _ in range(1000)}
        assert len(ids) == 1000

    def test_ids_keep_submission_order_readable(self):
        first, second = new_job_id(), new_job_id()
        assert int(first.split("-")[0]) + 1 == int(second.split("-")[0])

    def test_two_processes_never_collide(self):
        """The old per-process ``itertools.count(1)`` collided on job 1."""
        script = (
            "from repro.service.jobs import new_job_id;"
            "print('\\n'.join(new_job_id() for _ in range(20)))"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = os.pathsep.join([src, env.get("PYTHONPATH", "")]).rstrip(
            os.pathsep
        )
        runs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            ).stdout.split()
            for _ in range(2)
        ]
        assert not set(runs[0]) & set(runs[1]), "job ids collided across processes"

    def test_artifact_paths_differ_for_identical_specs(self, tmp_path):
        jobs = [_job(seed=7), _job(seed=7)]
        paths = {artifact_path(tmp_path, job) for job in jobs}
        assert len(paths) == 2

    def test_artifact_document_carries_the_string_id(self):
        job = _job()
        job._complete(None)
        doc = job_artifact(job)
        assert doc["job"]["job_id"] == job.job_id
        assert isinstance(doc["job"]["job_id"], str)
