"""End-to-end tests of :class:`repro.service.workers.RegistrationService`."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import RegistrationConfig
from repro.core.optim.gauss_newton import SolverOptions
from repro.data.synthetic import synthetic_registration_problem
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.transport import DistributedTransportSolver
from repro.runtime.plan_pool import get_plan_pool
from repro.service import (
    JobFailedError,
    JobStatus,
    RegistrationJobSpec,
    RegistrationService,
    TransportJobSpec,
)

from tests.fixtures import make_grid, smooth_scalar_field, smooth_velocity_field


@pytest.fixture()
def fast_options():
    return SolverOptions(max_newton_iterations=1, max_krylov_iterations=3)


@pytest.fixture(scope="module")
def tiny_problem():
    return synthetic_registration_problem(8)


def _transport_spec(grid, seed=5, moving_seed=None):
    return TransportJobSpec(
        velocity=smooth_velocity_field(grid, seed=seed),
        moving=smooth_scalar_field(grid, seed=moving_seed if moving_seed is not None else 50),
        grid=grid,
    )


class TestRegistrationJobs:
    def test_queued_solve_matches_direct_call(self, tiny_problem, fast_options):
        from repro.core.registration import register

        direct = register(
            tiny_problem.template, tiny_problem.reference, options=fast_options
        )
        with RegistrationService(num_workers=1) as service:
            job = service.submit_registration(
                RegistrationJobSpec(
                    template=tiny_problem.template,
                    reference=tiny_problem.reference,
                    options=fast_options,
                )
            )
            result = job.result(timeout=120)
        np.testing.assert_array_equal(direct.velocity, result.velocity)
        np.testing.assert_array_equal(direct.deformed_template, result.deformed_template)
        assert job.status is JobStatus.DONE
        assert job.record.metrics["result"]["schema"] == "repro.registration-result"

    def test_service_applies_its_config(self, tiny_problem, fast_options):
        with RegistrationService(
            config=RegistrationConfig(fft_backend="numpy"), num_workers=1
        ) as service:
            job = service.submit_registration(
                RegistrationJobSpec(
                    template=tiny_problem.template,
                    reference=tiny_problem.reference,
                    options=fast_options,
                )
            )
            result = job.result(timeout=120)
        assert result.summary()["fft_backend"] == "numpy"


class TestFailureIsolation:
    def test_worker_exception_fails_the_job_not_the_queue(self, tiny_problem, fast_options):
        grid = make_grid(8)
        with RegistrationService(num_workers=1) as service:
            bad = service.submit_registration(
                RegistrationJobSpec(
                    template=tiny_problem.template,
                    reference=smooth_scalar_field(make_grid(10), seed=1),  # shape mismatch
                    options=fast_options,
                )
            )
            good = service.submit_transport(_transport_spec(grid))
            # the failed job reports status/traceback...
            with pytest.raises(JobFailedError, match="shape"):
                bad.result(timeout=120)
            assert bad.status is JobStatus.FAILED
            assert bad.record.error is not None
            assert "Traceback" in bad.record.traceback
            # ... and the queue keeps serving later jobs (no hang)
            assert good.result(timeout=120).shape == grid.shape

    def test_failed_transport_batch_fails_every_member(self):
        grid = make_grid(8)
        bad_spec = TransportJobSpec(
            velocity=np.zeros((3, 9, 9, 9)),  # wrong shape for its grid
            moving=smooth_scalar_field(grid, seed=2),
            grid=grid,
        )
        with RegistrationService(num_workers=1, max_batch=2) as service:
            jobs = [service.submit_transport(bad_spec) for _ in range(2)]
            service.drain()
        assert all(job.status is JobStatus.FAILED for job in jobs)
        assert all(job.record.traceback for job in jobs)

    def test_gather_partial_results(self, tiny_problem, fast_options):
        grid = make_grid(8)
        with RegistrationService(num_workers=1) as service:
            good = service.submit_transport(_transport_spec(grid))
            bad = service.submit_registration(
                RegistrationJobSpec(
                    template=tiny_problem.template,
                    reference=smooth_scalar_field(make_grid(10), seed=1),
                    options=fast_options,
                )
            )
            results = service.gather([good, bad], timeout=120, raise_on_error=False)
        assert results[0] is not None
        assert results[1] is None


class TestMicroBatching:
    def test_compatible_jobs_merge_and_match_serial_bitwise(self):
        grid = make_grid(8)
        velocity = smooth_velocity_field(grid, seed=13)
        movings = [smooth_scalar_field(grid, seed=s) for s in (30, 31, 32, 33)]
        deco = PencilDecomposition.from_num_tasks(grid.shape, 4)
        serial = [
            DistributedTransportSolver(grid, deco, num_time_steps=4).solve_state(
                velocity, moving
            )
            for moving in movings
        ]

        # one worker, so all four jobs are queued when the claim happens
        with RegistrationService(num_workers=1, max_batch=4) as service:
            blocker = service.submit_transport(
                TransportJobSpec(
                    velocity=smooth_velocity_field(grid, seed=99),
                    moving=movings[0],
                    grid=grid,
                )
            )
            jobs = [
                service.submit_transport(
                    TransportJobSpec(velocity=velocity, moving=moving, grid=grid)
                )
                for moving in movings
            ]
            blocker.result(timeout=120)
            results = service.gather(jobs, timeout=120)

        for expected, got in zip(serial, results):
            np.testing.assert_array_equal(expected, got)
        batch_sizes = {job.record.batch_size for job in jobs}
        assert batch_sizes == {4}, "all four compatible jobs must ride one batch"
        assert jobs[0].record.metrics["ghost_exchange_calls"] > 0
        assert jobs[0].record.metrics["batch_size"] == 4

    def test_incompatible_jobs_do_not_merge(self):
        grid = make_grid(8)
        with RegistrationService(num_workers=1, max_batch=4) as service:
            jobs = [
                service.submit_transport(_transport_spec(grid, seed=seed))
                for seed in (1, 2)
            ]
            service.gather(jobs, timeout=120)
        assert all(job.record.batch_size == 1 for job in jobs)

    def test_batch_shares_one_ghost_round_per_step(self):
        """A batch of B jobs must charge the ledger once, not B times."""
        grid = make_grid(8)
        spec_factory = lambda m: TransportJobSpec(  # noqa: E731
            velocity=smooth_velocity_field(grid, seed=21),
            moving=smooth_scalar_field(grid, seed=m),
            grid=grid,
        )
        with RegistrationService(num_workers=1, max_batch=2) as service:
            blocker = service.submit_transport(_transport_spec(grid, seed=77))
            pair = [service.submit_transport(spec_factory(m)) for m in (40, 41)]
            blocker.result(timeout=120)
            service.gather(pair, timeout=120)
        single = blocker.record.metrics["ghost_exchange_calls"]
        merged = pair[0].record.metrics["ghost_exchange_calls"]
        assert merged == single, "a merged batch pays the same ghost rounds as one solve"


class TestArtifactsAndStats:
    def test_artifacts_written_for_done_and_failed(self, tmp_path, tiny_problem, fast_options):
        grid = make_grid(8)
        with RegistrationService(num_workers=1, artifacts_dir=tmp_path) as service:
            ok = service.submit_transport(_transport_spec(grid))
            bad = service.submit_registration(
                RegistrationJobSpec(
                    template=tiny_problem.template,
                    reference=smooth_scalar_field(make_grid(10), seed=1),
                    options=fast_options,
                )
            )
            service.drain()
        ok_doc = json.loads((tmp_path / f"job-{ok.job_id}.json").read_text())
        bad_doc = json.loads((tmp_path / f"job-{bad.job_id}.json").read_text())
        assert ok_doc["schema"] == "repro.service-job"
        assert ok_doc["job"]["status"] == "done"
        assert ok_doc["job"]["metrics"]["plan_pool_delta"]["misses"] >= 0
        assert bad_doc["job"]["status"] == "failed"
        assert "Traceback" in bad_doc["job"]["traceback"]

    def test_service_stats_shape(self):
        grid = make_grid(8)
        with RegistrationService(num_workers=2, max_batch=2) as service:
            jobs = [service.submit_transport(_transport_spec(grid)) for _ in range(2)]
            service.gather(jobs, timeout=120)
            stats = service.service_stats()
        assert stats["jobs_submitted"] == 2
        assert stats["jobs_by_status"]["done"] == 2
        assert stats["num_workers"] == 2
        assert 0.0 <= stats["plan_pool_hit_rate"] <= 1.0
        assert stats["plan_pool"]["hits"] == get_plan_pool().stats.hits

    def test_shutdown_without_drain_cancels_queued(self):
        grid = make_grid(8)
        service = RegistrationService(num_workers=1)
        blocker = service.submit_transport(_transport_spec(grid, seed=55))
        trailing = [service.submit_transport(_transport_spec(grid, seed=s)) for s in (60, 61)]
        blocker.wait(timeout=120)
        service.shutdown(drain=False)
        assert blocker.status is JobStatus.DONE
        # whatever had not been claimed was cancelled, nothing hangs
        for job in trailing:
            assert job.done
            assert job.status in (JobStatus.DONE, JobStatus.CANCELLED)
