"""Crash recovery: kill -9 a serving process, restart, lose zero jobs.

The acceptance test of the durable journal: a worker process is SIGKILLed
mid-solve with a batch of journaled jobs in flight; a fresh service over
the same journal directory re-queues every unfinished job, finishes them
with *bitwise identical* results, and the artifact directory ends up with
exactly one document per submitted job (original ids — no duplicates, no
orphans).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.parallel.pencil import PencilDecomposition
from repro.parallel.transport import DistributedTransportSolver
from repro.service import RegistrationService, TransportJobSpec
from repro.service.journal import JobJournal
from repro.spectral.grid import Grid

SHAPE = (8, 8, 8)
FAST_STEPS = 2
SLOW_STEPS = 1000  # ~2.5 s per solve: a wide window for the SIGKILL

#: The serving child: submit fast jobs then slow ones, journal everything,
#: report the ids once the fast jobs finished, then hang until killed.
_CHILD_SCRIPT = """
import json, os, sys, threading, time
from repro.service import RegistrationService, TransportJobSpec
sys.path.insert(0, {repo_root!r})
from tests.service.test_recovery import _spec

journal_dir, artifacts_dir, marker_path, num_fast, num_slow = sys.argv[1:6]
service = RegistrationService(
    num_workers=1,
    max_batch=1,
    journal_dir=journal_dir,
    artifacts_dir=artifacts_dir,
)
fast = [service.submit_transport(_spec(i, fast=True)) for i in range(int(num_fast))]
slow = [
    service.submit_transport(_spec(int(num_fast) + i, fast=False))
    for i in range(int(num_slow))
]
for job in fast:
    job.wait(timeout=300)
    # wait() fires on completion, a hair before the worker persists the
    # terminal record + artifact; wait those out so the kill cannot race
    # this test's "finished before the crash" premise
    path = os.path.join(artifacts_dir, "job-%s.json" % job.job_id)
    deadline = time.monotonic() + 60
    while not os.path.exists(path) and time.monotonic() < deadline:
        time.sleep(0.005)
with open(marker_path, "w") as handle:
    json.dump({{"job_ids": [job.job_id for job in fast + slow]}}, handle)
threading.Event().wait()  # hold every claimed solve open until SIGKILL
"""


def _spec(index: int, fast: bool) -> TransportJobSpec:
    """Deterministic spec #*index* — parent and child build identical jobs."""
    velocity = 0.1 * np.random.default_rng(1000 + index).standard_normal((3, *SHAPE))
    moving = np.random.default_rng(2000 + index).standard_normal(SHAPE)
    return TransportJobSpec(
        velocity=velocity,
        moving=moving,
        num_time_steps=FAST_STEPS if fast else SLOW_STEPS,
        num_tasks=2,
    )


def _expected(spec: TransportJobSpec) -> np.ndarray:
    grid = Grid(SHAPE)
    decomposition = PencilDecomposition.from_num_tasks(grid.shape, spec.num_tasks)
    solver = DistributedTransportSolver(
        grid, decomposition, num_time_steps=spec.num_time_steps
    )
    return solver.solve_state(spec.velocity, spec.moving)


def _run_and_kill(tmp_path: Path, num_fast: int, num_slow: int):
    """Serve *num_fast* + *num_slow* jobs in a child; SIGKILL it mid-solve."""
    journal_dir = tmp_path / "journal"
    artifacts_dir = tmp_path / "artifacts"
    marker = tmp_path / "submitted.json"
    repo_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(repo_root) / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    child = subprocess.Popen(
        [
            sys.executable,
            "-c",
            _CHILD_SCRIPT.format(repo_root=repo_root),
            str(journal_dir),
            str(artifacts_dir),
            str(marker),
            str(num_fast),
            str(num_slow),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        deadline = time.monotonic() + 120
        while not marker.exists():
            if child.poll() is not None:
                raise AssertionError(
                    f"child exited early:\n{child.stderr.read().decode()}"
                )
            if time.monotonic() > deadline:
                raise AssertionError("child never reported its submissions")
            time.sleep(0.01)
        # the marker is fsync-ordered AFTER every submission's journal
        # record, so all jobs are durable; the first slow solve is running
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup on assertion
            child.kill()
            child.wait(timeout=30)
    job_ids = json.loads(marker.read_text())["job_ids"]
    assert len(job_ids) == num_fast + num_slow
    return journal_dir, artifacts_dir, job_ids


@pytest.mark.slow
class TestKillAndRestart:
    def test_sigkill_mid_batch_loses_zero_jobs(self, tmp_path):
        """Four in-flight jobs, kill -9, restart: all four DONE, bitwise."""
        num_jobs = 4
        journal_dir, artifacts_dir, job_ids = _run_and_kill(
            tmp_path, num_fast=0, num_slow=num_jobs
        )
        with RegistrationService(
            num_workers=2,
            max_batch=1,
            journal_dir=journal_dir,
            artifacts_dir=artifacts_dir,
        ) as service:
            recovered = service.recovered_jobs
            assert [job.job_id for job in recovered] == job_ids
            results = service.gather(recovered, timeout=600)
            assert service.service_stats()["jobs_recovered"] == num_jobs

        for index, (job, result) in enumerate(zip(recovered, results)):
            assert job.status.value == "done"
            np.testing.assert_array_equal(
                result,
                _expected(_spec(index, fast=False)),
                err_msg=f"recovered job {job.job_id} diverged from a direct solve",
            )

        artifacts = sorted(artifacts_dir.glob("job-*.json"))
        assert [path.name for path in artifacts] == sorted(
            f"job-{job_id}.json" for job_id in job_ids
        ), "exactly one artifact per submitted job, original ids, no duplicates"
        assert JobJournal(journal_dir).replay() == [], "nothing left to recover"

    def test_finished_jobs_are_not_rerun(self, tmp_path):
        """Jobs that completed before the kill stay done; only the rest rerun."""
        journal_dir, artifacts_dir, job_ids = _run_and_kill(
            tmp_path, num_fast=2, num_slow=2
        )
        fast_ids, slow_ids = job_ids[:2], job_ids[2:]
        # the child already wrote the fast jobs' artifacts
        for job_id in fast_ids:
            doc = json.loads((artifacts_dir / f"job-{job_id}.json").read_text())
            assert doc["job"]["status"] == "done"

        with RegistrationService(
            num_workers=2,
            max_batch=1,
            journal_dir=journal_dir,
            artifacts_dir=artifacts_dir,
        ) as service:
            recovered_ids = [job.job_id for job in service.recovered_jobs]
            assert set(recovered_ids).issubset(set(slow_ids)), (
                "finished jobs must never be re-queued"
            )
            assert set(recovered_ids) >= set(slow_ids[1:]), (
                "jobs the child never started must be re-queued"
            )
            service.gather(service.recovered_jobs, timeout=600)

        artifacts = {path.name for path in artifacts_dir.glob("job-*.json")}
        assert artifacts == {f"job-{job_id}.json" for job_id in job_ids}
        assert JobJournal(journal_dir).replay() == []

    def test_second_restart_recovers_nothing(self, tmp_path):
        journal_dir, artifacts_dir, job_ids = _run_and_kill(
            tmp_path, num_fast=0, num_slow=2
        )
        with RegistrationService(
            num_workers=2, max_batch=1, journal_dir=journal_dir
        ) as service:
            assert len(service.recovered_jobs) == 2
            service.gather(service.recovered_jobs, timeout=600)
        with RegistrationService(
            num_workers=1, max_batch=1, journal_dir=journal_dir
        ) as service:
            assert service.recovered_jobs == []
