"""Cooperative cancellation: tokens, solver safe points, service semantics."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.optim.gauss_newton import SolverOptions
from repro.core.optim.line_search import ArmijoLineSearch
from repro.core.registration import register
from repro.data.synthetic import synthetic_registration_problem
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.transport import DistributedTransportSolver
from repro.runtime.cancellation import (
    CancelToken,
    CombinedCancelToken,
    SolveCancelled,
    check_cancelled,
)
from repro.service import (
    JobCancelledError,
    JobStatus,
    RegistrationJobSpec,
    RegistrationService,
    TransportJobSpec,
)

from tests.fixtures import make_grid, smooth_scalar_field, smooth_velocity_field


def _wait_for(predicate, timeout=60.0, interval=0.002):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _slow_transport_spec(grid, seed=9, moving_seed=70, num_time_steps=2000):
    """A transport solve long enough to cancel mid-flight deterministically."""
    return TransportJobSpec(
        velocity=smooth_velocity_field(grid, seed=seed),
        moving=smooth_scalar_field(grid, seed=moving_seed),
        num_time_steps=num_time_steps,
        num_tasks=2,
        grid=grid,
    )


def _endless_registration_spec(problem):
    """A registration that cannot converge before it is cancelled.

    Tolerances no solve reaches keep the gradient test alive, and the
    tiny fixed line-search step keeps the iteration from ever stalling
    into ``line_search_failure``: a 1e-6 step along the descent
    direction always satisfies Armijo while the gradient is O(1), yet
    makes no real progress — so the job runs until cancelled.
    """
    return RegistrationJobSpec(
        template=problem.template,
        reference=problem.reference,
        optimizer="gradient_descent",
        gauss_newton=False,
        options=SolverOptions(
            gradient_tolerance=1e-30,
            absolute_gradient_tolerance=1e-300,
            max_newton_iterations=1_000_000,
            line_search=ArmijoLineSearch(initial_step=1e-6),
        ),
    )


class TestTokens:
    def test_token_starts_clear_and_latches(self):
        token = CancelToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op while clear
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled
        with pytest.raises(SolveCancelled, match="solve"):
            token.raise_if_cancelled()

    def test_raise_names_the_operation(self):
        token = CancelToken()
        token.cancel()
        with pytest.raises(SolveCancelled, match="transport solve"):
            token.raise_if_cancelled("transport solve")

    def test_check_cancelled_accepts_none(self):
        check_cancelled(None)  # must be a no-op

    def test_combined_token_requires_every_rider(self):
        riders = [CancelToken() for _ in range(3)]
        combined = CombinedCancelToken(riders)
        riders[0].cancel()
        riders[1].cancel()
        assert not combined.cancelled
        combined.raise_if_cancelled()
        riders[2].cancel()
        assert combined.cancelled
        with pytest.raises(SolveCancelled):
            combined.raise_if_cancelled()

    def test_combined_token_of_one(self):
        rider = CancelToken()
        combined = CombinedCancelToken([rider])
        assert not combined.cancelled
        rider.cancel()
        assert combined.cancelled


class TestSolverSafePoints:
    """A pre-cancelled token stops each solver at its first safe point."""

    @pytest.mark.parametrize("optimizer", ["gauss_newton", "gradient_descent"])
    def test_registration_raises_before_first_iteration(self, optimizer):
        problem = synthetic_registration_problem(8)
        token = CancelToken()
        token.cancel()
        with pytest.raises(SolveCancelled, match="registration solve"):
            register(
                problem.template,
                problem.reference,
                optimizer=optimizer,
                gauss_newton=optimizer == "gauss_newton",
                options=SolverOptions(max_newton_iterations=3, cancel_token=token),
            )

    def test_transport_raises_before_first_step(self):
        grid = make_grid(8)
        deco = PencilDecomposition.from_num_tasks(grid.shape, 2)
        solver = DistributedTransportSolver(grid, deco, num_time_steps=3)
        token = CancelToken()
        token.cancel()
        with pytest.raises(SolveCancelled, match="transport solve"):
            solver.solve_state(
                smooth_velocity_field(grid, seed=3),
                smooth_scalar_field(grid, seed=4),
                cancel_token=token,
            )
        with pytest.raises(SolveCancelled, match="transport solve"):
            solver.solve_state_many(
                smooth_velocity_field(grid, seed=3),
                np.stack([smooth_scalar_field(grid, seed=4)] * 2),
                cancel_token=token,
            )


class TestServiceCancellation:
    def test_plain_cancel_refuses_running_force_cancels(self):
        grid = make_grid(8)
        with RegistrationService(num_workers=1, max_batch=1) as service:
            job = service.submit_transport(_slow_transport_spec(grid))
            assert _wait_for(lambda: job.status is JobStatus.RUNNING)
            assert job.cancel() is False, "plain cancel must not stop a RUNNING job"
            assert job.cancel(force=True) is True
            assert job.wait(timeout=60)
        assert job.status is JobStatus.CANCELLED
        with pytest.raises(JobCancelledError):
            job.result(timeout=1)

    def test_force_cancel_of_terminal_job_returns_false(self):
        grid = make_grid(8)
        with RegistrationService(num_workers=1) as service:
            job = service.submit_transport(
                _slow_transport_spec(grid, num_time_steps=2)
            )
            job.result(timeout=120)
            assert job.cancel(force=True) is False

    def test_running_registration_cancels_between_iterations(self):
        problem = synthetic_registration_problem(8)
        with RegistrationService(num_workers=1) as service:
            job = service.submit_registration(_endless_registration_spec(problem))
            assert _wait_for(lambda: job.status is JobStatus.RUNNING)
            time.sleep(0.05)  # let the outer loop actually start iterating
            cancelled_at = time.monotonic()
            assert job.cancel(force=True) is True
            assert job.wait(timeout=60), "the solve must stop at the next iteration"
            stop_latency = time.monotonic() - cancelled_at
        assert job.status is JobStatus.CANCELLED, "cancelled, not FAILED"
        assert job.record.error is None
        # generous bound: one 8^3 gradient-descent iteration is milliseconds
        assert stop_latency < 30.0

    def test_cancelled_rider_leaves_its_batch_peers_complete(self):
        grid = make_grid(8)
        velocity = smooth_velocity_field(grid, seed=11)
        spec = lambda m: TransportJobSpec(  # noqa: E731
            velocity=velocity,
            moving=smooth_scalar_field(grid, seed=m),
            num_time_steps=1500,
            num_tasks=2,
            grid=grid,
        )
        with RegistrationService(num_workers=1, max_batch=2) as service:
            blocker = service.submit_transport(
                _slow_transport_spec(grid, seed=99, num_time_steps=2)
            )
            rider, peer = service.submit_transport(spec(80)), service.submit_transport(spec(81))
            blocker.result(timeout=120)
            assert _wait_for(lambda: rider.status is JobStatus.RUNNING)
            assert rider.record.batch_size == 2, "both jobs must ride one batch"
            assert rider.cancel(force=True) is True
            result = peer.result(timeout=300)
        assert peer.status is JobStatus.DONE, "peers of a cancelled rider complete"
        assert result.shape == grid.shape
        assert rider.status is JobStatus.CANCELLED
        with pytest.raises(JobCancelledError):
            rider.result(timeout=1)

    def test_batch_aborts_once_every_rider_cancelled(self):
        grid = make_grid(8)
        velocity = smooth_velocity_field(grid, seed=17)
        spec = lambda m: TransportJobSpec(  # noqa: E731
            velocity=velocity,
            moving=smooth_scalar_field(grid, seed=m),
            num_time_steps=5000,
            num_tasks=2,
            grid=grid,
        )
        with RegistrationService(num_workers=1, max_batch=2) as service:
            blocker = service.submit_transport(
                _slow_transport_spec(grid, seed=98, num_time_steps=2)
            )
            jobs = [service.submit_transport(spec(m)) for m in (85, 86)]
            blocker.result(timeout=120)
            assert _wait_for(lambda: jobs[0].status is JobStatus.RUNNING)
            started = time.monotonic()
            for job in jobs:
                assert job.cancel(force=True) is True
            for job in jobs:
                assert job.wait(timeout=60)
            abort_latency = time.monotonic() - started
        assert all(job.status is JobStatus.CANCELLED for job in jobs)
        # 5000 time steps would take far longer than the abort did
        assert abort_latency < 30.0
