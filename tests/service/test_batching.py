"""Micro-batching policy: compatibility keys and bitwise-identical merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.pencil import PencilDecomposition
from repro.parallel.transport import DistributedTransportSolver
from repro.service.batching import batch_key, group_compatible, stack_compatible
from repro.service.jobs import RegistrationJobSpec, TransportJobSpec
from repro.spectral.grid import Grid
from repro.transport.kernels import set_default_plan_layout

from tests.fixtures import make_grid, smooth_scalar_field, smooth_velocity_field


def _spec(grid, seed=5, **kwargs):
    velocity = smooth_velocity_field(grid, seed=seed)
    moving = smooth_scalar_field(grid, seed=seed + 100)
    return TransportJobSpec(velocity=velocity, moving=moving, grid=grid, **kwargs)


@pytest.fixture(scope="module")
def grid() -> Grid:
    return make_grid(8)


class TestBatchKey:
    def test_register_jobs_are_unbatchable(self, grid):
        spec = RegistrationJobSpec(
            template=smooth_scalar_field(grid, seed=1),
            reference=smooth_scalar_field(grid, seed=2),
        )
        assert batch_key(spec) is None

    def test_identical_transport_specs_share_a_key(self, grid):
        assert batch_key(_spec(grid)) == batch_key(_spec(grid))

    def test_key_separates_every_ingredient(self, grid):
        base = _spec(grid)
        assert batch_key(base) != batch_key(_spec(grid, seed=6))  # velocity
        assert batch_key(base) != batch_key(_spec(grid, num_time_steps=8))  # dt
        assert batch_key(base) != batch_key(_spec(grid, num_tasks=2))  # layout
        other_grid = make_grid(10)
        assert batch_key(base) != batch_key(_spec(other_grid))  # grid

    def test_key_separates_plan_layouts(self, grid):
        base_key = batch_key(_spec(grid))
        set_default_plan_layout("streaming")
        try:
            assert batch_key(_spec(grid)) != base_key
        finally:
            set_default_plan_layout(None)


class TestGrouping:
    def test_greedy_grouping_respects_order_and_cap(self, grid):
        a = [_spec(grid, seed=1) for _ in range(3)]
        b = [_spec(grid, seed=2) for _ in range(2)]
        groups = group_compatible([a[0], b[0], a[1], b[1], a[2]], max_batch=2)
        assert groups == [[a[0], a[1]], [b[0], b[1]], [a[2]]]

    def test_unbatchable_specs_are_singletons(self, grid):
        reg = RegistrationJobSpec(
            template=smooth_scalar_field(grid, seed=1),
            reference=smooth_scalar_field(grid, seed=2),
        )
        groups = group_compatible([reg, reg], max_batch=4)
        assert groups == [[reg], [reg]]

    def test_stack_compatible(self, grid):
        same = [_spec(grid, seed=3), _spec(grid, seed=3)]
        assert stack_compatible(same)
        assert not stack_compatible([_spec(grid, seed=3), _spec(grid, seed=4)])
        assert not stack_compatible([])


@pytest.mark.mpi
class TestBitwiseMerging:
    def test_batched_solve_matches_serial_bitwise(self, grid):
        """The property the batch key must guarantee: merging == serial."""
        velocity = smooth_velocity_field(grid, seed=9)
        movings = [smooth_scalar_field(grid, seed=s) for s in (20, 21, 22)]
        deco = PencilDecomposition.from_num_tasks(grid.shape, 4)

        serial = [
            DistributedTransportSolver(grid, deco, num_time_steps=4).solve_state(
                velocity, moving
            )
            for moving in movings
        ]
        batched = DistributedTransportSolver(grid, deco, num_time_steps=4).solve_state_many(
            velocity, np.stack(movings, axis=0)
        )
        for expected, got in zip(serial, batched):
            np.testing.assert_array_equal(expected, got)
