"""Atlas (population) workload over the registration service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optim.gauss_newton import SolverOptions
from repro.data.synthetic import synthetic_population
from repro.service import RegistrationService
from repro.service.atlas import run_atlas, submit_atlas


@pytest.fixture(scope="module")
def population():
    return synthetic_population(8, num_subjects=3, num_time_steps=2)


@pytest.fixture()
def fast_options():
    return SolverOptions(max_newton_iterations=1, max_krylov_iterations=3)


class TestSyntheticPopulation:
    def test_population_shape_and_determinism(self, population):
        assert population.num_subjects == 3
        assert population.atlas.shape == (8, 8, 8)
        assert all(s.shape == (8, 8, 8) for s in population.subjects)
        assert len(set(population.amplitudes)) == 3
        again = synthetic_population(8, num_subjects=3, num_time_steps=2)
        for a, b in zip(population.subjects, again.subjects):
            np.testing.assert_array_equal(a, b)

    def test_subjects_differ_from_atlas_and_each_other(self, population):
        for subject in population.subjects:
            assert not np.array_equal(subject, population.atlas)
        assert not np.array_equal(population.subjects[0], population.subjects[-1])

    def test_invalid_spread(self):
        with pytest.raises(ValueError, match="spread"):
            synthetic_population(8, num_subjects=2, spread=1.5)


class TestRunAtlas:
    def test_atlas_pass_registers_every_subject(self, population, fast_options):
        with RegistrationService(num_workers=2) as service:
            atlas = run_atlas(
                population.atlas,
                population.subjects,
                service=service,
                options=fast_options,
                beta=1e-1,
            )
        assert atlas.num_succeeded == population.num_subjects
        assert atlas.num_failed == 0
        assert atlas.mean_deformed.shape == population.atlas.shape
        summary = atlas.summary()
        assert summary["num_subjects"] == 3
        assert summary["mean_relative_residual"] is not None
        # every job went through the service with its own record
        assert len(atlas.jobs) == 3
        assert all(job.record.metrics for job in atlas.jobs)

    def test_owned_service_is_created_and_shut_down(self, population, fast_options):
        atlas = run_atlas(
            population.atlas,
            population.subjects[:2],
            options=fast_options,
            beta=1e-1,
        )
        assert atlas.num_succeeded == 2

    def test_partial_failure_keeps_survivors(self, population, fast_options):
        subjects = [population.subjects[0], np.zeros((10, 10, 10))]  # second: bad shape
        with RegistrationService(num_workers=1) as service:
            atlas = run_atlas(
                population.atlas,
                subjects,
                service=service,
                raise_on_error=False,
                options=fast_options,
            )
        assert atlas.num_succeeded == 1
        assert atlas.num_failed == 1
        assert atlas.results[1] is None
        assert atlas.mean_deformed is not None  # averaged over the survivor

    def test_empty_population_is_an_error(self, population):
        with pytest.raises(ValueError, match="at least one"):
            run_atlas(population.atlas, [])

    def test_submit_atlas_returns_live_handles(self, population, fast_options):
        with RegistrationService(num_workers=1) as service:
            jobs = submit_atlas(
                service,
                population.atlas,
                population.subjects[:2],
                options=fast_options,
            )
            results = service.gather(jobs, timeout=120)
        assert len(results) == 2
        assert all(r.deformed_template.shape == (8, 8, 8) for r in results)
