"""Tests of the memory-mapped problem I/O (:func:`repro.data.io.open_problem`).

The classic :func:`load_problem` round trip is covered in ``test_data.py``;
this module pins the out-of-core disk format: uncompressed archives whose
volume members can be mapped in place, lazy read-only views, and the clear
errors raised for the formats that cannot be mapped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import load_problem, memmap_npz_member, open_problem, save_problem
from repro.spectral.grid import Grid


@pytest.fixture()
def problem_arrays(rng):
    shape = (6, 7, 8)
    reference = rng.standard_normal(shape)
    template = rng.standard_normal(shape)
    velocity = rng.standard_normal((3, *shape))
    return reference, template, velocity


@pytest.fixture()
def stored_path(tmp_path, problem_arrays):
    reference, template, velocity = problem_arrays
    return save_problem(
        tmp_path / "problem.npz",
        reference,
        template,
        grid=Grid(reference.shape, (1.0, 2.0, 3.0)),
        velocity=velocity,
        metadata={"beta": 1e-2, "iterations": 3.0},
        compress=False,
    )


class TestSaveProblemCompressFlag:
    def test_uncompressed_archive_is_larger_and_loads_identically(
        self, tmp_path, problem_arrays
    ):
        reference, template, _ = problem_arrays
        stored = save_problem(tmp_path / "s.npz", reference, template, compress=False)
        deflated = save_problem(tmp_path / "d.npz", reference, template, compress=True)
        assert stored.stat().st_size > deflated.stat().st_size
        for path in (stored, deflated):
            loaded = load_problem(path)
            np.testing.assert_array_equal(loaded["reference"], reference)
            np.testing.assert_array_equal(loaded["template"], template)


class TestMemmapNpzMember:
    def test_maps_the_exact_array(self, stored_path, problem_arrays):
        reference, _, velocity = problem_arrays
        mapped = memmap_npz_member(stored_path, "reference")
        assert isinstance(mapped, np.memmap)
        np.testing.assert_array_equal(np.asarray(mapped), reference)
        np.testing.assert_array_equal(
            np.asarray(memmap_npz_member(stored_path, "velocity")), velocity
        )

    def test_views_are_read_only(self, stored_path):
        mapped = memmap_npz_member(stored_path, "reference")
        with pytest.raises(ValueError):
            mapped[0, 0, 0] = 1.0

    def test_key_with_npy_suffix_also_accepted(self, stored_path, problem_arrays):
        np.testing.assert_array_equal(
            np.asarray(memmap_npz_member(stored_path, "reference.npy")),
            problem_arrays[0],
        )

    def test_missing_member_lists_available(self, stored_path):
        with pytest.raises(KeyError, match="reference"):
            memmap_npz_member(stored_path, "does-not-exist")

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            memmap_npz_member(tmp_path / "nope.npz", "reference")

    def test_compressed_member_error_points_at_the_fix(self, tmp_path, problem_arrays):
        reference, template, _ = problem_arrays
        path = save_problem(tmp_path / "c.npz", reference, template, compress=True)
        with pytest.raises(ValueError, match="compress=False"):
            memmap_npz_member(path, "reference")

    def test_fortran_order_member_rejected(self, tmp_path):
        path = tmp_path / "fortran.npz"
        np.savez(path, fields=np.asfortranarray(np.arange(24.0).reshape(2, 3, 4)))
        with pytest.raises(ValueError, match="C-contiguous|Fortran"):
            memmap_npz_member(path, "fields")

    def test_object_dtype_member_rejected(self, tmp_path):
        path = tmp_path / "obj.npz"
        np.savez(path, fields=np.array([{"a": 1}], dtype=object), allow_pickle=True)
        with pytest.raises(ValueError, match="object dtype"):
            memmap_npz_member(path, "fields")


class TestOpenProblem:
    def test_mmap_round_trip(self, stored_path, problem_arrays):
        reference, template, velocity = problem_arrays
        problem = open_problem(stored_path, mmap=True)
        assert isinstance(problem["reference"], np.memmap)
        assert isinstance(problem["template"], np.memmap)
        assert isinstance(problem["velocity"], np.memmap)
        np.testing.assert_array_equal(np.asarray(problem["reference"]), reference)
        np.testing.assert_array_equal(np.asarray(problem["template"]), template)
        np.testing.assert_array_equal(np.asarray(problem["velocity"]), velocity)
        assert problem["grid"].shape == reference.shape
        assert problem["grid"].lengths == pytest.approx((1.0, 2.0, 3.0))
        assert problem["metadata"] == {"beta": 1e-2, "iterations": 3.0}

    def test_matches_load_problem_exactly(self, stored_path):
        resident = load_problem(stored_path)
        mapped = open_problem(stored_path, mmap=True)
        for key in ("reference", "template", "velocity"):
            np.testing.assert_array_equal(np.asarray(mapped[key]), resident[key])

    def test_mmap_false_degrades_to_load_problem(self, tmp_path, problem_arrays):
        reference, template, _ = problem_arrays
        path = save_problem(tmp_path / "c.npz", reference, template, compress=True)
        problem = open_problem(path, mmap=False)
        assert not isinstance(problem["reference"], np.memmap)
        np.testing.assert_array_equal(problem["reference"], reference)

    def test_compressed_archive_raises_under_mmap(self, tmp_path, problem_arrays):
        reference, template, _ = problem_arrays
        path = save_problem(tmp_path / "c.npz", reference, template, compress=True)
        with pytest.raises(ValueError, match="compress=False"):
            open_problem(path, mmap=True)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_problem(tmp_path / "nope.npz")

    def test_without_optional_fields(self, tmp_path, problem_arrays):
        reference, template, _ = problem_arrays
        path = save_problem(tmp_path / "bare.npz", reference, template, compress=False)
        problem = open_problem(path)
        assert "velocity" not in problem
        assert "metadata" not in problem
        np.testing.assert_array_equal(np.asarray(problem["template"]), template)
