"""Tests for repro.data: preprocessing, synthetic problems, brain phantom, I/O."""

import numpy as np
import pytest

from repro.data.brain import (
    BrainPhantomPair,
    brain_phantom,
    brain_registration_pair,
    nirep_like_shape,
    warped_self_pair,
)
from repro.data.io import load_problem, save_problem
from repro.data.preprocessing import normalize_intensity, pad_image, smooth_image
from repro.data.synthetic import (
    sinusoidal_template,
    solenoidal_velocity,
    synthetic_registration_problem,
    synthetic_velocity,
)
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators


class TestPreprocessing:
    def test_normalize_intensity_range(self, rng):
        image = 5.0 + 3.0 * rng.standard_normal((8, 8, 8))
        out = normalize_intensity(image)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_normalize_constant_image(self):
        out = normalize_intensity(np.full((4, 4, 4), 7.0))
        np.testing.assert_array_equal(out, 0.0)

    def test_smooth_image_reduces_variance(self, rng):
        grid = Grid((16, 16, 16))
        image = rng.standard_normal(grid.shape)
        smoothed = smooth_image(image, grid, sigma_cells=1.0)
        assert np.var(smoothed) < np.var(image)

    def test_smooth_zero_sigma_identity(self, rng):
        grid = Grid((8, 8, 8))
        image = rng.standard_normal(grid.shape)
        np.testing.assert_allclose(smooth_image(image, grid, 0.0), image)
        with pytest.raises(ValueError):
            smooth_image(image, grid, -1.0)

    def test_pad_image_grows_grid_consistently(self):
        grid = Grid((8, 8, 8))
        image = np.ones(grid.shape)
        padded, new_grid = pad_image(image, grid, pad_cells=2)
        assert padded.shape == (12, 12, 12)
        assert new_grid.shape == (12, 12, 12)
        # spacing unchanged
        assert new_grid.spacing == pytest.approx(grid.spacing)
        with pytest.raises(ValueError):
            pad_image(image, grid, pad_cells=-1)


class TestSyntheticProblem:
    def test_template_matches_paper_formula(self):
        grid = Grid((16, 16, 16))
        template = sinusoidal_template(grid)
        x1, x2, x3 = grid.coordinates()
        expected = (np.sin(x1) ** 2 + np.sin(x2) ** 2 + np.sin(x3) ** 2) / 3.0
        np.testing.assert_allclose(template, expected, atol=1e-12)
        assert 0.0 <= template.min() and template.max() <= 1.0

    def test_velocity_matches_paper_formula(self):
        grid = Grid((8, 8, 8))
        v = synthetic_velocity(grid)
        x1, x2, x3 = grid.coordinates()
        np.testing.assert_allclose(v[0], np.cos(x1) * np.sin(x2), atol=1e-12)
        np.testing.assert_allclose(v[1], np.cos(x2) * np.sin(x1), atol=1e-12)
        np.testing.assert_allclose(v[2], np.cos(x1) * np.sin(x3), atol=1e-12)

    def test_solenoidal_velocity_is_divergence_free(self):
        grid = Grid((16, 16, 16))
        ops = SpectralOperators(grid)
        assert ops.is_divergence_free(solenoidal_velocity(grid), tol=1e-10)

    def test_problem_construction(self):
        problem = synthetic_registration_problem(12)
        assert problem.grid.shape == (12, 12, 12)
        assert problem.template.shape == (12, 12, 12)
        assert problem.initial_residual > 0.0
        assert problem.describe()["grid"] == (12, 12, 12)

    def test_incompressible_variant_uses_solenoidal_velocity(self):
        problem = synthetic_registration_problem(12, incompressible=True)
        ops = SpectralOperators(problem.grid)
        assert ops.is_divergence_free(problem.true_velocity, tol=1e-9)

    def test_amplitude_scales_mismatch(self):
        mild = synthetic_registration_problem(12, amplitude=0.2)
        strong = synthetic_registration_problem(12, amplitude=1.0)
        assert strong.initial_residual > mild.initial_residual

    def test_explicit_shape_and_grid(self):
        problem = synthetic_registration_problem((8, 10, 12))
        assert problem.grid.shape == (8, 10, 12)
        grid = Grid((8, 8, 8))
        assert synthetic_registration_problem(grid=grid).grid is grid


class TestBrainPhantom:
    def test_nirep_like_shape_aspect_ratio(self):
        assert nirep_like_shape(256) == (256, 300, 256)
        shape = nirep_like_shape(64)
        assert shape[1] > shape[0] == shape[2]
        with pytest.raises(ValueError):
            nirep_like_shape(4)

    def test_phantom_properties(self):
        grid = Grid((24, 28, 24))
        image = brain_phantom(grid, seed=1)
        assert image.shape == grid.shape
        assert image.min() == pytest.approx(0.0)
        assert image.max() == pytest.approx(1.0)
        # compact support: the boundary of the volume is (near) background
        assert image[0].max() < 0.2
        assert image[-1].max() < 0.2

    def test_phantom_is_deterministic(self):
        grid = Grid((16, 19, 16))
        a = brain_phantom(grid, seed=3, subject_variability=0.05)
        b = brain_phantom(grid, seed=3, subject_variability=0.05)
        np.testing.assert_array_equal(a, b)

    def test_different_subjects_differ(self):
        pair = brain_registration_pair(base_resolution=16, seed=11)
        assert isinstance(pair, BrainPhantomPair)
        assert pair.initial_residual > 0.0
        # but they still share gross anatomy (correlated images)
        corr = np.corrcoef(pair.reference.ravel(), pair.template.ravel())[0, 1]
        assert corr > 0.5

    def test_pair_masks(self):
        pair = brain_registration_pair(base_resolution=16, seed=5)
        mask_ref, mask_tmp = pair.masks()
        assert mask_ref.dtype == bool
        assert 0.05 < mask_ref.mean() < 0.9

    def test_isotropic_option_and_explicit_grid(self):
        pair = brain_registration_pair(base_resolution=16, isotropic=True)
        assert pair.grid.shape == (16, 16, 16)
        grid = Grid((12, 14, 12))
        pair2 = brain_registration_pair(grid=grid)
        assert pair2.grid is grid

    def test_warped_self_pair_has_known_structure(self):
        pair = warped_self_pair(base_resolution=16, seed=2, warp_amplitude=0.3)
        assert pair.initial_residual > 0.0
        assert pair.reference.shape == pair.template.shape


class TestIO:
    def test_save_and_load_round_trip(self, tmp_path, rng):
        reference = rng.standard_normal((6, 7, 8))
        template = rng.standard_normal((6, 7, 8))
        velocity = rng.standard_normal((3, 6, 7, 8))
        path = save_problem(
            tmp_path / "problem.npz",
            reference,
            template,
            velocity=velocity,
            metadata={"beta": 1e-2, "nt": 4},
        )
        data = load_problem(path)
        np.testing.assert_array_equal(data["reference"], reference)
        np.testing.assert_array_equal(data["template"], template)
        np.testing.assert_array_equal(data["velocity"], velocity)
        assert data["grid"].shape == (6, 7, 8)
        assert data["metadata"]["beta"] == pytest.approx(1e-2)

    def test_save_without_optional_fields(self, tmp_path, rng):
        image = rng.standard_normal((4, 4, 4))
        path = save_problem(tmp_path / "minimal.npz", image, image)
        data = load_problem(path)
        assert "velocity" not in data
        assert "metadata" not in data

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            save_problem(tmp_path / "bad.npz", np.zeros((4, 4, 4)), np.zeros((5, 4, 4)))
        with pytest.raises(ValueError):
            save_problem(
                tmp_path / "bad2.npz",
                np.zeros((4, 4, 4)),
                np.zeros((4, 4, 4)),
                velocity=np.zeros((2, 4, 4, 4)),
            )
        with pytest.raises(FileNotFoundError):
            load_problem(tmp_path / "missing.npz")
