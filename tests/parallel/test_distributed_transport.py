"""Tests for the distributed semi-Lagrangian transport."""

import numpy as np
import pytest

from repro.data.synthetic import sinusoidal_template, synthetic_velocity
from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.transport import DistributedSemiLagrangian, DistributedTransportSolver
from repro.spectral.grid import Grid
from repro.transport.semi_lagrangian import SemiLagrangianStepper, compute_departure_points
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.solvers import TransportSolver

from tests.fixtures import smooth_scalar_field, smooth_vector_field, smooth_velocity_field

pytestmark = pytest.mark.mpi


@pytest.fixture(scope="module")
def grid():
    return Grid((16, 16, 16))


@pytest.fixture(scope="module")
def velocity(grid):
    return smooth_velocity_field(grid, seed=4)


class TestDistributedSemiLagrangian:
    @pytest.mark.parametrize("pgrid", [(2, 2), (1, 4), (2, 3)])
    def test_departure_points_match_serial(self, grid, velocity, pgrid):
        deco = PencilDecomposition(grid.shape, *pgrid)
        stepper = DistributedSemiLagrangian(grid, deco, velocity, dt=0.25)
        serial = compute_departure_points(
            grid, velocity, 0.25, PeriodicInterpolator(grid, "catmull_rom")
        )
        for rank in range(deco.num_tasks):
            expected = serial[(slice(None), *deco.local_slices(rank))].reshape(3, -1)
            np.testing.assert_allclose(stepper.departure_points(rank), expected, atol=1e-10)

    def test_single_step_matches_serial(self, grid, velocity):
        deco = PencilDecomposition(grid.shape, 2, 2)
        stepper = DistributedSemiLagrangian(grid, deco, velocity, dt=0.25)
        field = smooth_scalar_field(grid, seed=7)
        serial_stepper = SemiLagrangianStepper(
            grid, velocity, 0.25, interpolator=PeriodicInterpolator(grid, "catmull_rom")
        )
        expected = serial_stepper.step(field)
        blocks = stepper.step(deco.scatter(field))
        np.testing.assert_allclose(deco.gather(blocks), expected, atol=1e-10)

    def test_zero_velocity_is_identity(self, grid):
        deco = PencilDecomposition(grid.shape, 2, 2)
        stepper = DistributedSemiLagrangian(grid, deco, grid.zeros_vector(), dt=0.25)
        field = smooth_scalar_field(grid, seed=8)
        blocks = stepper.step(deco.scatter(field))
        np.testing.assert_allclose(deco.gather(blocks), field, atol=1e-10)

    def test_negative_dt_rejected(self, grid, velocity):
        deco = PencilDecomposition(grid.shape, 2, 2)
        with pytest.raises(ValueError):
            DistributedSemiLagrangian(grid, deco, velocity, dt=-0.1)

    def test_velocity_shape_validated(self, grid):
        deco = PencilDecomposition(grid.shape, 2, 2)
        with pytest.raises(ValueError):
            DistributedSemiLagrangian(grid, deco, np.zeros(grid.shape), dt=0.1)

    def test_recreated_stepper_is_a_pool_hit_with_no_setup(self, grid, velocity):
        """The tentpole no-replan pin: same velocity -> zero alltoallv setup.

        A re-created distributed stepper for an unchanged velocity must get
        both of its scatter plans (the RK2 star plan and the departure plan)
        warm from the shared pool — no owner computation, no point scatter,
        no stencil builds — and still step bitwise identically.
        """
        deco = PencilDecomposition(grid.shape, 2, 2)
        cold = DistributedSemiLagrangian(grid, deco, velocity, dt=0.25)
        assert cold.plan_pool_hits == 0
        field = smooth_scalar_field(grid, seed=9)
        expected = cold.step(deco.scatter(field))

        warm_comm = SimulatedCommunicator(deco.num_tasks)
        warm = DistributedSemiLagrangian(grid, deco, velocity, dt=0.25, comm=warm_comm)
        assert warm.plan_pool_hits == 2
        assert warm.star_plan.stencil_builds == 0
        assert warm.departure_plan.stencil_builds == 0
        # the warm construction shipped no departure points anywhere: its
        # only communication was interpolating v(X*) through the warm plan
        assert warm_comm.ledger.bytes("interp_scatter") == 0
        blocks = warm.step(deco.scatter(field))
        for rank in range(deco.num_tasks):
            np.testing.assert_array_equal(blocks[rank], expected[rank])

    def test_pool_bypass_always_rebuilds(self, grid, velocity):
        deco = PencilDecomposition(grid.shape, 2, 2)
        DistributedSemiLagrangian(grid, deco, velocity, dt=0.25)
        rebuilt = DistributedSemiLagrangian(
            grid, deco, velocity, dt=0.25, use_plan_pool=False
        )
        assert rebuilt.plan_pool_hits == 0
        assert rebuilt.departure_plan.stencil_builds > 0

    def test_rk2_velocity_components_share_one_exchange_round(self, grid, velocity):
        """Constructing the stepper interpolates all three components of
        v(X*) through one batched round trip: 4 ghost-exchange calls (2
        axes x 2 directions) and one value return, not one round each."""
        deco = PencilDecomposition(grid.shape, 2, 2)
        comm = SimulatedCommunicator(deco.num_tasks)
        DistributedSemiLagrangian(grid, deco, velocity, dt=0.25, comm=comm)
        summary = comm.ledger.summary()
        assert summary["ghost_exchange"]["calls"] == 4
        assert summary["interp_return"]["calls"] == 1

    def test_step_many_matches_per_field_steps(self, grid, velocity):
        deco = PencilDecomposition(grid.shape, 2, 2)
        stepper = DistributedSemiLagrangian(grid, deco, velocity, dt=0.25)
        fields = [smooth_scalar_field(grid, seed=s) for s in (3, 4, 5)]
        per_field = [stepper.step(deco.scatter(field)) for field in fields]
        stacks = [
            np.stack([deco.scatter(field)[rank] for field in fields], axis=0)
            for rank in range(deco.num_tasks)
        ]
        batched = stepper.step_many(stacks)
        for rank in range(deco.num_tasks):
            for b in range(3):
                np.testing.assert_array_equal(batched[rank][b], per_field[b][rank])


class TestDistributedTransportSolver:
    @pytest.mark.parametrize("pgrid", [(2, 2), (1, 3)])
    def test_state_solve_matches_serial(self, pgrid):
        grid = Grid((16, 16, 16))
        template = sinusoidal_template(grid)
        velocity = synthetic_velocity(grid)
        deco = PencilDecomposition(grid.shape, *pgrid)
        distributed = DistributedTransportSolver(grid, deco, num_time_steps=4)
        result = distributed.solve_state(velocity, template)

        serial = TransportSolver(grid, num_time_steps=4, interpolation="catmull_rom")
        expected = serial.solve_state(serial.plan(velocity), template)[-1]
        np.testing.assert_allclose(result, expected, atol=1e-9)

    def test_communication_is_charged(self):
        grid = Grid((12, 12, 12))
        deco = PencilDecomposition(grid.shape, 2, 2)
        comm = SimulatedCommunicator(deco.num_tasks)
        solver = DistributedTransportSolver(grid, deco, num_time_steps=2, comm=comm)
        solver.solve_state(0.3 * smooth_vector_field(grid, seed=1), smooth_scalar_field(grid, seed=2))
        summary = comm.ledger.summary()
        assert summary["interp_scatter"]["bytes"] > 0
        assert summary["interp_return"]["bytes"] > 0
        assert summary["ghost_exchange"]["bytes"] > 0

    def test_solve_state_many_matches_per_template_solves(self):
        grid = Grid((12, 12, 12))
        deco = PencilDecomposition(grid.shape, 2, 2)
        velocity = 0.4 * smooth_vector_field(grid, seed=6)
        templates = np.stack([smooth_scalar_field(grid, seed=s) for s in (7, 8)])
        solver = DistributedTransportSolver(grid, deco, num_time_steps=3)
        batched = solver.solve_state_many(velocity, templates)
        for b in range(2):
            expected = DistributedTransportSolver(grid, deco, num_time_steps=3).solve_state(
                velocity, templates[b]
            )
            np.testing.assert_array_equal(batched[b], expected)

    def test_solve_state_many_validates_stack(self):
        grid = Grid((12, 12, 12))
        deco = PencilDecomposition(grid.shape, 2, 2)
        solver = DistributedTransportSolver(grid, deco)
        with pytest.raises(ValueError, match="stacked"):
            solver.solve_state_many(grid.zeros_vector(), np.zeros(grid.shape))

    def test_template_shape_validated(self):
        grid = Grid((12, 12, 12))
        deco = PencilDecomposition(grid.shape, 2, 2)
        solver = DistributedTransportSolver(grid, deco)
        with pytest.raises(ValueError):
            solver.solve_state(grid.zeros_vector(), np.zeros((4, 4, 4)))

    def test_invalid_time_steps(self):
        grid = Grid((12, 12, 12))
        deco = PencilDecomposition(grid.shape, 2, 2)
        with pytest.raises(ValueError):
            DistributedTransportSolver(grid, deco, num_time_steps=0)
