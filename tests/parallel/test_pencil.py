"""Tests for repro.parallel.pencil."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.pencil import PencilDecomposition, split_axis

pytestmark = pytest.mark.mpi


class TestSplitAxis:
    def test_even_split(self):
        assert split_axis(8, 2) == [(0, 4), (4, 8)]

    def test_uneven_split(self):
        assert split_axis(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_single_part(self):
        assert split_axis(5, 1) == [(0, 5)]

    def test_too_many_parts_rejected(self):
        with pytest.raises(ValueError):
            split_axis(3, 4)

    @given(length=st.integers(1, 100), parts=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_partition_properties(self, length, parts):
        if parts > length:
            with pytest.raises(ValueError):
                split_axis(length, parts)
            return
        bounds = split_axis(length, parts)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == length
        # contiguous and non-empty
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0
            assert a1 > a0
        # balanced: sizes differ by at most one
        sizes = [b - a for a, b in bounds]
        assert max(sizes) - min(sizes) <= 1


class TestDecomposition:
    def test_validation(self):
        with pytest.raises(ValueError):
            PencilDecomposition((4, 4, 4), 8, 1)  # p1 > N1
        with pytest.raises(ValueError):
            PencilDecomposition((4, 4), 1, 1)

    def test_from_num_tasks_prefers_square(self):
        deco = PencilDecomposition.from_num_tasks((64, 64, 64), 16)
        assert (deco.p1, deco.p2) == (4, 4)
        deco = PencilDecomposition.from_num_tasks((64, 64, 64), 8)
        assert deco.p1 * deco.p2 == 8

    def test_rank_coordinate_round_trip(self):
        deco = PencilDecomposition((8, 8, 8), 2, 3)
        for rank in range(deco.num_tasks):
            r1, r2 = deco.rank_coordinates(rank)
            assert deco.rank_of(r1, r2) == rank

    def test_rank_out_of_range(self):
        deco = PencilDecomposition((8, 8, 8), 2, 2)
        with pytest.raises(ValueError):
            deco.rank_coordinates(4)
        with pytest.raises(ValueError):
            deco.rank_of(2, 0)

    def test_row_and_column_groups(self):
        deco = PencilDecomposition((8, 8, 8), 2, 3)
        assert deco.row_group(0) == [0, 1, 2]
        assert deco.row_group(1) == [3, 4, 5]
        assert deco.column_group(1) == [1, 4]

    def test_local_shapes_cover_grid(self):
        deco = PencilDecomposition((9, 10, 11), 3, 2)
        total = sum(np.prod(deco.local_shape(r)) for r in range(deco.num_tasks))
        assert total == 9 * 10 * 11

    def test_local_slices_distribution_variants(self):
        deco = PencilDecomposition((8, 12, 10), 2, 3)
        s_in = deco.local_slices(0, (0, 1))
        assert s_in[2] == slice(None)
        s_out = deco.local_slices(0, (1, 2))
        assert s_out[0] == slice(None)

    def test_local_slices_invalid_axes(self):
        deco = PencilDecomposition((8, 8, 8), 2, 2)
        with pytest.raises(ValueError):
            deco.local_slices(0, (1, 1))


class TestScatterGather:
    @pytest.mark.parametrize("dist", [(0, 1), (0, 2), (1, 2)])
    def test_scatter_gather_round_trip(self, dist, rng):
        deco = PencilDecomposition((8, 9, 10), 2, 3)
        data = rng.standard_normal((8, 9, 10))
        blocks = deco.scatter(data, dist)
        assert len(blocks) == 6
        np.testing.assert_array_equal(deco.gather(blocks, dist), data)

    def test_scatter_validates_shape(self):
        deco = PencilDecomposition((8, 8, 8), 2, 2)
        with pytest.raises(ValueError):
            deco.scatter(np.zeros((4, 4, 4)))

    def test_gather_validates_block_count_and_shape(self):
        deco = PencilDecomposition((8, 8, 8), 2, 2)
        blocks = deco.scatter(np.zeros((8, 8, 8)))
        with pytest.raises(ValueError):
            deco.gather(blocks[:-1])
        blocks[0] = np.zeros((3, 3, 3))
        with pytest.raises(ValueError):
            deco.gather(blocks)


class TestOwnership:
    def test_owner_of_indices_matches_slices(self, rng):
        deco = PencilDecomposition((8, 9, 10), 2, 3)
        indices = np.stack(
            [
                rng.integers(0, 8, size=200),
                rng.integers(0, 9, size=200),
                rng.integers(0, 10, size=200),
            ]
        )
        owners = deco.owner_of_indices(indices)
        for point in range(indices.shape[1]):
            rank = owners[point]
            slices = deco.local_slices(rank)
            for axis in (0, 1):
                lo = slices[axis].start or 0
                hi = slices[axis].stop
                assert lo <= indices[axis, point] < hi

    def test_owner_shape_validation(self):
        deco = PencilDecomposition((8, 8, 8), 2, 2)
        with pytest.raises(ValueError):
            deco.owner_of_indices(np.zeros((2, 5), dtype=int))
