"""Tests for the simulated communicator, the distributed FFT and ghost exchange."""

import numpy as np
import pytest

from repro.parallel.comm import CommunicationLedger, SimulatedCommunicator
from repro.parallel.distributed_fft import DistributedFFT
from repro.parallel.ghost import exchange_ghost_layers
from repro.parallel.operators import DistributedSpectralOperators
from repro.parallel.pencil import PencilDecomposition
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators

from tests.fixtures import smooth_scalar_field, smooth_vector_field

pytestmark = pytest.mark.mpi


class TestLedger:
    def test_record_and_totals(self):
        ledger = CommunicationLedger()
        ledger.record("fft", 4, 1000)
        ledger.record("fft", 2, 500)
        ledger.record("ghost", 1, 64)
        assert ledger.messages("fft") == 6
        assert ledger.bytes("fft") == 1500
        assert ledger.messages() == 7
        assert ledger.bytes() == 1564

    def test_unknown_category_is_zero(self):
        assert CommunicationLedger().bytes("nope") == 0

    def test_reset_and_summary(self):
        ledger = CommunicationLedger()
        ledger.record("x", 1, 8)
        assert "x" in ledger.summary()
        ledger.reset()
        assert ledger.summary() == {}


class TestCommunicator:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            SimulatedCommunicator(0)

    def test_alltoallv_moves_data(self):
        comm = SimulatedCommunicator(3)
        send = [[np.full(2, 10 * i + j) for j in range(3)] for i in range(3)]
        recv = comm.alltoallv(send)
        for j in range(3):
            for i in range(3):
                np.testing.assert_array_equal(recv[j][i], np.full(2, 10 * i + j))
        # 6 off-diagonal messages of 2 float64 each
        assert comm.ledger.messages("alltoallv") == 6
        assert comm.ledger.bytes("alltoallv") == 6 * 16

    def test_alltoallv_validates_shape(self):
        comm = SimulatedCommunicator(2)
        with pytest.raises(ValueError):
            comm.alltoallv([[np.zeros(1)]])

    def test_exchange_routes_messages(self):
        comm = SimulatedCommunicator(2)
        inbox = comm.exchange([(0, 1, np.arange(3)), (1, 0, np.arange(2))])
        assert len(inbox[1]) == 1 and inbox[1][0][0] == 0
        assert len(inbox[0]) == 1 and inbox[0][0][0] == 1

    def test_exchange_validates_ranks(self):
        comm = SimulatedCommunicator(2)
        with pytest.raises(ValueError):
            comm.exchange([(0, 5, np.zeros(1))])

    def test_allreduce_sum(self):
        comm = SimulatedCommunicator(4)
        assert comm.allreduce_sum([1.0, 2.0, 3.0, 4.0]) == 10.0
        with pytest.raises(ValueError):
            comm.allreduce_sum([1.0])

    def test_allgather(self):
        comm = SimulatedCommunicator(2)
        out = comm.allgather([np.zeros(2), np.ones(2)])
        assert len(out) == 2


@pytest.mark.parametrize(
    "shape, pgrid",
    [((8, 8, 8), (2, 2)), ((8, 12, 10), (2, 3)), ((9, 8, 8), (3, 2)), ((8, 8, 8), (1, 1))],
)
class TestDistributedFFT:
    def test_matches_numpy_fftn(self, shape, pgrid, rng):
        deco = PencilDecomposition(shape, *pgrid)
        dfft = DistributedFFT(deco)
        field = rng.standard_normal(shape)
        np.testing.assert_allclose(
            dfft.forward_global(field), np.fft.fftn(field), atol=1e-9
        )

    def test_round_trip(self, shape, pgrid, rng):
        deco = PencilDecomposition(shape, *pgrid)
        dfft = DistributedFFT(deco)
        field = rng.standard_normal(shape)
        back = dfft.backward_global(dfft.forward_global(field))
        np.testing.assert_allclose(back.real, field, atol=1e-10)

    def test_communication_is_recorded(self, shape, pgrid, rng):
        deco = PencilDecomposition(shape, *pgrid)
        dfft = DistributedFFT(deco)
        dfft.forward_global(rng.standard_normal(shape))
        if deco.num_tasks > 1:
            assert dfft.comm.ledger.bytes("fft_transpose") > 0
        else:
            assert dfft.comm.ledger.bytes("fft_transpose") == 0


class TestDistributedFFTValidation:
    def test_block_shape_validation(self):
        deco = PencilDecomposition((8, 8, 8), 2, 2)
        dfft = DistributedFFT(deco)
        with pytest.raises(ValueError):
            dfft.forward([np.zeros((8, 8, 8))] * 4)
        with pytest.raises(ValueError):
            dfft.forward([np.zeros((4, 4, 8))] * 3)

    def test_apply_symbol_matches_serial(self, rng):
        grid = Grid((8, 8, 8))
        deco = PencilDecomposition(grid.shape, 2, 2)
        dfft = DistributedFFT(deco)
        field = rng.standard_normal(grid.shape)
        k1 = grid.wavenumbers_1d(0)[:, None, None]
        k2 = grid.wavenumbers_1d(1)[None, :, None]
        k3 = grid.wavenumbers_1d(2)[None, None, :]
        symbol = -(k1**2 + k2**2 + k3**2)
        blocks = dfft.apply_symbol(deco.scatter(field.astype(complex)), symbol)
        serial = SpectralOperators(grid).laplacian(field)
        np.testing.assert_allclose(deco.gather(blocks), serial, atol=1e-9)


class TestGhostExchange:
    @pytest.mark.parametrize("pgrid", [(2, 2), (1, 3), (2, 3), (1, 1)])
    def test_ghost_layers_match_periodic_padding(self, pgrid, rng):
        shape = (8, 9, 10)
        deco = PencilDecomposition(shape, *pgrid)
        comm = SimulatedCommunicator(deco.num_tasks)
        data = rng.standard_normal(shape)
        blocks = deco.scatter(data)
        width = 2
        extended = exchange_ghost_layers(blocks, deco, width, comm)
        padded = np.pad(data, width, mode="wrap")
        for rank in range(deco.num_tasks):
            slices = deco.local_slices(rank)
            lo = [s.start or 0 for s in slices]
            hi = [s.stop if s.stop is not None else shape[d] for d, s in enumerate(slices)]
            expected = padded[
                lo[0] : hi[0] + 2 * width,
                lo[1] : hi[1] + 2 * width,
                lo[2] : hi[2] + 2 * width,
            ]
            np.testing.assert_allclose(extended[rank], expected, atol=0)

    def test_zero_width_is_identity(self, rng):
        deco = PencilDecomposition((8, 8, 8), 2, 2)
        comm = SimulatedCommunicator(4)
        blocks = deco.scatter(rng.standard_normal((8, 8, 8)))
        out = exchange_ghost_layers(blocks, deco, 0, comm)
        for a, b in zip(out, blocks):
            np.testing.assert_array_equal(a, b)

    def test_width_validation(self):
        deco = PencilDecomposition((8, 8, 8), 2, 2)
        comm = SimulatedCommunicator(4)
        blocks = deco.scatter(np.zeros((8, 8, 8)))
        with pytest.raises(ValueError):
            exchange_ghost_layers(blocks, deco, -1, comm)
        with pytest.raises(ValueError):
            exchange_ghost_layers(blocks, deco, 10, comm)


class TestDistributedOperators:
    @pytest.fixture(scope="class")
    def setup(self):
        grid = Grid((12, 12, 12))
        deco = PencilDecomposition(grid.shape, 2, 2)
        dist = DistributedSpectralOperators(grid, deco)
        serial = SpectralOperators(grid)
        return grid, deco, dist, serial

    def test_laplacian_matches_serial(self, setup):
        grid, deco, dist, serial = setup
        field = smooth_scalar_field(grid, seed=1)
        blocks = dist.laplacian(deco.scatter(field.astype(complex)))
        np.testing.assert_allclose(deco.gather(blocks), serial.laplacian(field), atol=1e-9)

    def test_gradient_matches_serial(self, setup):
        grid, deco, dist, serial = setup
        field = smooth_scalar_field(grid, seed=2)
        components = dist.gradient(deco.scatter(field.astype(complex)))
        serial_grad = serial.gradient(field)
        for axis in range(3):
            np.testing.assert_allclose(
                deco.gather(components[axis]), serial_grad[axis], atol=1e-9
            )

    def test_divergence_matches_serial(self, setup):
        grid, deco, dist, serial = setup
        v = smooth_vector_field(grid, seed=3)
        vector_blocks = [deco.scatter(v[axis].astype(complex)) for axis in range(3)]
        blocks = dist.divergence(vector_blocks)
        np.testing.assert_allclose(deco.gather(blocks), serial.divergence(v), atol=1e-9)

    def test_leray_matches_serial_and_is_divergence_free(self, setup):
        grid, deco, dist, serial = setup
        v = smooth_vector_field(grid, seed=4)
        vector_blocks = [deco.scatter(v[axis].astype(complex)) for axis in range(3)]
        projected = dist.leray_project(vector_blocks)
        serial_projected = serial.leray_project(v)
        gathered = np.stack([deco.gather(projected[axis]) for axis in range(3)], axis=0)
        np.testing.assert_allclose(gathered, serial_projected, atol=1e-9)
        assert serial.is_divergence_free(gathered, tol=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DistributedSpectralOperators(Grid((8, 8, 8)), PencilDecomposition((12, 12, 12), 2, 2))
