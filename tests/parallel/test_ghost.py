"""Isolated tests for the ghost-layer exchange (repro.parallel.ghost).

The exchange used to be exercised only indirectly through the scatter
suite; these tests pin its contract directly: correct periodic halos
(including the corner regions carried by the axis-by-axis trick),
width/periodicity edge cases, and the batched mode's ledger guarantee —
one neighbour round for a whole field stack, with per-field bits identical
to the scalar exchange.
"""

import numpy as np
import pytest

from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.ghost import exchange_ghost_layers, exchange_ghost_layers_batched
from repro.parallel.pencil import PencilDecomposition

from tests.fixtures import make_grid, smooth_scalar_field

pytestmark = pytest.mark.mpi


def _setup(shape=(12, 12, 12), pgrid=(2, 3), seed=0):
    grid = make_grid(shape)
    deco = PencilDecomposition(grid.shape, *pgrid)
    comm = SimulatedCommunicator(deco.num_tasks)
    field = smooth_scalar_field(grid, seed=seed)
    blocks = deco.scatter(field)
    return field, deco, comm, blocks


class TestScalarExchange:
    @pytest.mark.parametrize("pgrid", [(2, 2), (1, 3), (3, 2), (1, 1)])
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_halos_match_the_periodically_padded_global_field(self, pgrid, width):
        """Every rank's extended block is a window of np.pad(..., wrap)."""
        field, deco, comm, blocks = _setup(pgrid=pgrid)
        extended = exchange_ghost_layers(blocks, deco, width, comm)
        padded = np.pad(field, width, mode="wrap")
        for rank in range(deco.num_tasks):
            s1, s2, _ = deco.local_slices(rank)
            window = padded[
                s1.start : s1.stop + 2 * width,
                s2.start : s2.stop + 2 * width,
                : field.shape[2] + 2 * width,
            ]
            np.testing.assert_array_equal(extended[rank], window)

    def test_interior_is_the_original_block(self):
        field, deco, comm, blocks = _setup()
        extended = exchange_ghost_layers(blocks, deco, 2, comm)
        for rank in range(deco.num_tasks):
            np.testing.assert_array_equal(
                extended[rank][2:-2, 2:-2, 2:-2], blocks[rank]
            )

    def test_width_zero_is_a_communication_free_copy(self):
        field, deco, comm, blocks = _setup()
        extended = exchange_ghost_layers(blocks, deco, 0, comm)
        for rank in range(deco.num_tasks):
            np.testing.assert_array_equal(extended[rank], blocks[rank])
            assert extended[rank] is not blocks[rank]
        assert comm.ledger.bytes("ghost_exchange") == 0

    def test_periodic_ring_of_length_two_is_unambiguous(self):
        """p=2 along an axis: predecessor == successor; halos must not mix."""
        field, deco, comm, blocks = _setup(pgrid=(2, 1))
        extended = exchange_ghost_layers(blocks, deco, 2, comm)
        padded = np.pad(field, 2, mode="wrap")
        for rank in range(deco.num_tasks):
            s1, s2, _ = deco.local_slices(rank)
            np.testing.assert_array_equal(
                extended[rank],
                padded[s1.start : s1.stop + 4, s2.start : s2.stop + 4, : field.shape[2] + 4],
            )

    def test_edge_cases_rejected(self):
        field, deco, comm, blocks = _setup()
        with pytest.raises(ValueError, match="non-negative"):
            exchange_ghost_layers(blocks, deco, -1, comm)
        with pytest.raises(ValueError, match="exceeds the smallest local extent"):
            exchange_ghost_layers(blocks, deco, 7, comm)  # local extent is 6/4
        with pytest.raises(ValueError, match="expected"):
            exchange_ghost_layers(blocks[:-1], deco, 2, comm)
        bad = [np.zeros((5, 5, 5)) for _ in range(deco.num_tasks)]
        with pytest.raises(ValueError, match="grid shape"):
            exchange_ghost_layers(bad, deco, 2, comm)
        with pytest.raises(ValueError, match="3-dimensional"):
            exchange_ghost_layers(
                [b[None] for b in blocks], deco, 2, comm
            )


class TestBatchedExchange:
    def test_batched_bits_match_per_field_exchange(self):
        grid = make_grid((12, 12, 12))
        deco = PencilDecomposition(grid.shape, 2, 2)
        fields = [smooth_scalar_field(grid, seed=s) for s in range(4)]
        per_field = []
        for field in fields:
            comm = SimulatedCommunicator(deco.num_tasks)
            per_field.append(
                exchange_ghost_layers(deco.scatter(field), deco, 2, comm)
            )
        comm = SimulatedCommunicator(deco.num_tasks)
        stacks = [
            np.stack([deco.scatter(field)[rank] for field in fields], axis=0)
            for rank in range(deco.num_tasks)
        ]
        batched = exchange_ghost_layers_batched(stacks, deco, 2, comm)
        for rank in range(deco.num_tasks):
            for b in range(4):
                np.testing.assert_array_equal(batched[rank][b], per_field[b][rank])

    def test_one_round_for_the_whole_batch(self):
        """The latency pin: B fields cost the message count of one field."""
        grid = make_grid((12, 12, 12))
        deco = PencilDecomposition(grid.shape, 2, 3)
        field = smooth_scalar_field(grid, seed=1)
        scalar_comm = SimulatedCommunicator(deco.num_tasks)
        exchange_ghost_layers(deco.scatter(field), deco, 2, scalar_comm)
        scalar = scalar_comm.ledger.entries["ghost_exchange"]

        batch = 5
        batched_comm = SimulatedCommunicator(deco.num_tasks)
        stacks = [
            np.repeat(block[None], batch, axis=0) for block in deco.scatter(field)
        ]
        exchange_ghost_layers_batched(stacks, deco, 2, batched_comm)
        batched = batched_comm.ledger.entries["ghost_exchange"]

        # same number of rounds and neighbour messages, B times the payload
        assert batched.calls == scalar.calls == 4  # 2 axes x 2 directions
        assert batched.messages == scalar.messages
        assert batched.bytes == batch * scalar.bytes

    def test_mismatched_batch_sizes_rejected(self):
        grid = make_grid((12, 12, 12))
        deco = PencilDecomposition(grid.shape, 2, 2)
        field = smooth_scalar_field(grid, seed=2)
        stacks = [block[None] for block in deco.scatter(field)]
        stacks[1] = np.repeat(stacks[1], 2, axis=0)
        comm = SimulatedCommunicator(deco.num_tasks)
        with pytest.raises(ValueError, match="batch"):
            exchange_ghost_layers_batched(stacks, deco, 2, comm)
