"""Tests for the scatter interpolation plan, machine models and cost model."""

import numpy as np
import pytest

from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.machines import MAVERICK, STAMPEDE, MachineSpec, get_machine
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.performance import (
    KernelCostModel,
    RegistrationCostModel,
    strong_scaling_efficiency,
    weak_scaling_efficiency,
)
from repro.parallel.scatter import SCATTER_PLAN_TAG, ScatterInterpolationPlan
from repro.spectral.grid import Grid
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.semi_lagrangian import compute_departure_points

from tests.fixtures import make_scatter_plan, smooth_scalar_field, smooth_velocity_field

pytestmark = pytest.mark.mpi


@pytest.fixture(scope="module")
def grid():
    return Grid((12, 12, 12))


class TestScatterInterpolation:
    @pytest.mark.parametrize("pgrid", [(2, 2), (1, 3), (3, 2), (1, 1)])
    def test_matches_serial_catmull_rom(self, grid, pgrid, rng):
        deco, comm, points, plan = make_scatter_plan(grid, pgrid)
        field = rng.standard_normal(grid.shape)
        values = plan.interpolate(deco.scatter(field))
        serial = PeriodicInterpolator(grid, "catmull_rom")
        for rank in range(deco.num_tasks):
            np.testing.assert_allclose(values[rank], serial(field, points[rank]), atol=1e-10)

    def test_semi_lagrangian_departure_points(self, grid):
        # the actual use case: departure points of the synthetic velocity
        velocity = smooth_velocity_field(grid, seed=2)
        departure = compute_departure_points(grid, velocity, dt=0.25)
        deco = PencilDecomposition(grid.shape, 2, 2)
        comm = SimulatedCommunicator(deco.num_tasks)
        local_points = [
            departure[(slice(None), *deco.local_slices(rank))].reshape(3, -1)
            for rank in range(deco.num_tasks)
        ]
        plan = ScatterInterpolationPlan(grid, deco, comm, local_points)
        field = smooth_scalar_field(grid, seed=3)
        values = plan.interpolate(deco.scatter(field))
        serial = PeriodicInterpolator(grid, "catmull_rom")(field, departure)
        for rank in range(deco.num_tasks):
            expected = serial[deco.local_slices(rank)].reshape(-1)
            np.testing.assert_allclose(values[rank], expected, atol=1e-10)

    def test_communication_is_recorded(self, grid, rng):
        deco, comm, points, plan = make_scatter_plan(grid, (2, 3))
        plan.interpolate(deco.scatter(rng.standard_normal(grid.shape)))
        assert comm.ledger.bytes("interp_scatter") > 0
        assert comm.ledger.bytes("interp_return") > 0
        assert comm.ledger.bytes("ghost_exchange") > 0

    def test_point_counts_cover_all_points(self, grid):
        deco, comm, points, plan = make_scatter_plan(grid, (2, 2), points_per_rank=100)
        assert sum(plan.local_point_counts()) == 4 * 100

    def test_stencils_are_planned_once_per_velocity(self, grid, rng):
        """Repeated interpolate calls never rebuild the local stencil plans."""
        deco, comm, points, plan = make_scatter_plan(grid, (2, 2), seed=11)
        builds_after_init = plan.stencil_builds
        assert builds_after_init > 0
        assert not plan.pool_hit
        for _ in range(3):
            plan.interpolate(deco.scatter(rng.standard_normal(grid.shape)))
        assert plan.stencil_builds == builds_after_init

    def test_replanning_same_points_is_one_whole_plan_hit(self, grid, plan_pool):
        """The tentpole no-replan pin: re-creating a plan for unchanged
        departure points is a *single* warm pool hit — no routing-table
        rebuild, no stencil builds, no ``alltoallv`` point scatter."""
        make_scatter_plan(grid, (2, 2), seed=12)
        before = plan_pool.stats
        deco, comm, points, warm = make_scatter_plan(grid, (2, 2), seed=12)
        delta = plan_pool.stats - before
        assert warm.pool_hit
        assert warm.stencil_builds == 0
        assert (delta.hits, delta.misses) == (1, 0)
        # zero alltoallv setup: the warm plan's own communicator shipped
        # no departure points at all
        assert comm.ledger.bytes("interp_scatter") == 0
        # and the warm plans still interpolate correctly
        field = smooth_scalar_field(grid, seed=13)
        values = warm.interpolate(deco.scatter(field))
        serial = PeriodicInterpolator(grid, "catmull_rom")
        for rank in range(deco.num_tasks):
            np.testing.assert_allclose(values[rank], serial(field, points[rank]), atol=1e-10)

    def test_pool_stats_include_scatter_entries(self, grid, plan_pool):
        """Scatter plans are first-class citizens of the pool accounting."""
        make_scatter_plan(grid, (2, 2), seed=14)
        make_scatter_plan(grid, (2, 2), seed=14)  # warm
        tags = plan_pool.stats_by_tag()
        assert SCATTER_PLAN_TAG in tags
        scatter = tags[SCATTER_PLAN_TAG]
        assert scatter.entries == 1
        assert scatter.hits == 1 and scatter.misses == 1
        assert scatter.current_bytes > 0
        # the tagged gauges add up to the pool-wide accounting
        assert sum(s.current_bytes for s in tags.values()) == plan_pool.current_bytes
        assert sum(s.entries for s in tags.values()) == len(plan_pool)

    def test_pooled_entry_bytes_match_plan_payload(self, grid, plan_pool):
        """bytes_used of the scatter entry == the plan data's own nbytes."""
        make_scatter_plan(grid, (2, 2), seed=15)
        (key,) = [k for k in plan_pool.keys() if k[0] == SCATTER_PLAN_TAG]
        data = plan_pool.peek(key)
        assert plan_pool.stats_by_tag()[SCATTER_PLAN_TAG].current_bytes == data.nbytes

    def test_pool_bypass_always_rebuilds(self, grid):
        make_scatter_plan(grid, (2, 2), seed=16)
        deco, comm, points, plan = make_scatter_plan(
            grid, (2, 2), seed=16, use_plan_pool=False
        )
        assert not plan.pool_hit
        assert plan.stencil_builds > 0
        assert comm.ledger.bytes("interp_scatter") > 0

    def test_validates_inputs(self, grid):
        deco = PencilDecomposition(grid.shape, 2, 2)
        comm = SimulatedCommunicator(4)
        with pytest.raises(ValueError):
            ScatterInterpolationPlan(grid, deco, comm, [np.zeros((3, 5))])
        with pytest.raises(ValueError):
            ScatterInterpolationPlan(grid, deco, comm, [np.zeros((2, 5))] * 4)
        plan = ScatterInterpolationPlan(grid, deco, comm, [np.zeros((3, 5))] * 4)
        with pytest.raises(ValueError):
            plan.interpolate([np.zeros((6, 6, 12))] * 3)


class TestBatchedScatterInterpolation:
    """The PR-5 distributed pin: one ghost round / one return per batch."""

    def test_batched_matches_per_field_bitwise(self, grid, rng):
        deco, comm, points, plan = make_scatter_plan(grid, (2, 3), seed=21)
        fields = np.stack([rng.standard_normal(grid.shape) for _ in range(4)])
        per_field = [plan.interpolate(deco.scatter(field)) for field in fields]
        batched = plan.interpolate_many_global(fields)
        for rank in range(deco.num_tasks):
            assert batched[rank].shape == (4, points[rank].shape[1])
            for b in range(4):
                np.testing.assert_array_equal(batched[rank][b], per_field[b][rank])

    def test_exactly_one_exchange_round_per_batch(self, grid, rng):
        """The ledger byte-accounting pin: a stacked batch performs exactly
        one ghost-exchange round and one return alltoallv — the message
        counts of a single field, with B times the payload."""
        batch = 3
        field = rng.standard_normal(grid.shape)
        deco, scalar_comm, points, scalar_plan = make_scatter_plan(grid, (2, 2), seed=22)
        scalar_comm.ledger.reset()  # drop the construction traffic
        scalar_plan.interpolate(deco.scatter(field))
        scalar = scalar_comm.ledger.summary()

        _, batched_comm, _, batched_plan = make_scatter_plan(grid, (2, 2), seed=22)
        batched_comm.ledger.reset()
        batched_plan.interpolate_many_global(np.repeat(field[None], batch, axis=0))
        batched = batched_comm.ledger.summary()

        for category in ("ghost_exchange", "interp_return"):
            assert batched[category]["calls"] == scalar[category]["calls"]
            assert batched[category]["messages"] == scalar[category]["messages"]
            assert batched[category]["bytes"] == batch * scalar[category]["bytes"]
        assert batched["interp_return"]["calls"] == 1
        assert batched["ghost_exchange"]["calls"] == 4  # 2 axes x 2 directions
        # no other traffic: the batch reused the cached plan end to end
        assert set(batched) == {"ghost_exchange", "interp_return"}

    def test_scalar_interpolate_is_the_batch_one_case(self, grid, rng):
        deco, comm, points, plan = make_scatter_plan(grid, (1, 3), seed=23)
        field = rng.standard_normal(grid.shape)
        scalar = plan.interpolate(deco.scatter(field))
        batched = plan.interpolate_many_global(field[None])
        for rank in range(deco.num_tasks):
            np.testing.assert_array_equal(batched[rank][0], scalar[rank])

    def test_batched_matches_serial_interpolate_many(self, grid, rng):
        deco, comm, points, plan = make_scatter_plan(grid, (2, 2), seed=24)
        fields = np.stack([rng.standard_normal(grid.shape) for _ in range(3)])
        batched = plan.interpolate_many_global(fields)
        serial = PeriodicInterpolator(grid, "catmull_rom")
        for rank in range(deco.num_tasks):
            expected = serial.interpolate_many(fields, points[rank])
            np.testing.assert_allclose(batched[rank], expected, atol=1e-10)

    def test_input_validation(self, grid):
        deco, comm, points, plan = make_scatter_plan(grid, (2, 2), seed=25)
        with pytest.raises(ValueError, match="block stacks"):
            plan.interpolate_many([np.zeros((1, 6, 6, 12))] * 3)
        with pytest.raises(ValueError, match="must be"):
            plan.interpolate_many([np.zeros((6, 6, 12))] * 4)
        with pytest.raises(ValueError, match="stacked"):
            plan.interpolate_many_global(np.zeros(grid.shape))


class TestMachines:
    def test_lookup(self):
        assert get_machine("maverick") is MAVERICK
        assert get_machine("STAMPEDE") is STAMPEDE
        with pytest.raises(ValueError):
            get_machine("frontier")

    def test_nodes_for_tasks(self):
        assert MAVERICK.nodes_for_tasks(16) == 1
        assert MAVERICK.nodes_for_tasks(17) == 2
        assert STAMPEDE.nodes_for_tasks(2048) == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec("bad", 1, 1, -1.0, 1.0, 1.0, 1.0)


class TestKernelCostModel:
    def test_costs_are_positive_and_scale_with_grid(self):
        small = KernelCostModel((64, 64, 64), 16, MAVERICK)
        large = KernelCostModel((128, 128, 128), 16, MAVERICK)
        assert 0 < small.fft_execution_time() < large.fft_execution_time()
        assert 0 < small.interpolation_execution_time() < large.interpolation_execution_time()

    def test_single_task_has_no_communication(self):
        model = KernelCostModel((64, 64, 64), 1, MAVERICK)
        assert model.fft_communication_time() == 0.0
        assert model.interpolation_communication_time() == 0.0

    def test_matvec_cost_structure(self):
        model = KernelCostModel((64, 64, 64), 16, MAVERICK)
        cost = model.matvec_cost(4)
        assert set(cost) == {
            "fft_execution",
            "fft_communication",
            "interp_execution",
            "interp_communication",
        }
        assert cost["fft_execution"] == pytest.approx(32 * model.fft_execution_time())

    def test_memory_model(self):
        model = KernelCostModel((128, 128, 128), 16, MAVERICK)
        # (2*4+5) * N^3/p * 8 bytes
        assert model.memory_per_task_bytes(4) == pytest.approx(13 * 128**3 / 16 * 8)


class TestRegistrationCostModel:
    def test_breakdown_adds_up(self):
        model = RegistrationCostModel((128, 128, 128), 16, MAVERICK)
        b = model.breakdown()
        assert b.time_to_solution == pytest.approx(b.kernel_sum + b.other)
        assert b.num_nodes == 1

    def test_strong_scaling_improves_time(self):
        times = [
            RegistrationCostModel((128, 128, 128), p, MAVERICK).breakdown().time_to_solution
            for p in (16, 32, 64, 256)
        ]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_calibration_against_table1_run3(self):
        """Model within 50% of the paper's run #3 on every reported column."""
        b = RegistrationCostModel(
            (128, 128, 128), 16, MAVERICK, num_newton_iterations=2, num_hessian_matvecs=2
        ).breakdown()
        paper = {
            "time_to_solution": 15.2,
            "fft_communication": 1.73,
            "fft_execution": 1.35,
            "interp_communication": 1.84,
            "interp_execution": 6.66,
        }
        model = b.as_dict()
        for key, value in paper.items():
            assert abs(model[key] - value) / value < 0.5, key

    def test_efficiency_helpers(self):
        breakdowns = [
            RegistrationCostModel((128, 128, 128), p, MAVERICK).breakdown()
            for p in (16, 32, 64)
        ]
        strong = strong_scaling_efficiency(breakdowns)
        assert strong[0] == pytest.approx(1.0)
        assert all(0 < e <= 1.05 for e in strong)
        weak = weak_scaling_efficiency(breakdowns)
        assert weak[0] == pytest.approx(1.0)
        assert strong_scaling_efficiency([]) == []
        assert weak_scaling_efficiency([]) == []
