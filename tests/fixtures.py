"""Shared fixture library: synthetic fields, grids and distributed plans.

One place for the parameterized factories (all with pinned seeds) that the
per-suite conftests and test modules used to copy-paste: band-limited smooth
scalar/vector fields, cached grids, random off-grid point sets and the
owner/worker scatter-plan harness of the parallel suite.  ``tests/conftest.py``
wires the pytest fixtures on top of these plain functions; test modules import
the functions directly (``from tests.fixtures import ...``) when they need a
factory rather than a fixture.

Everything here is deterministic: equal arguments always produce bitwise
identical arrays, which the plan-pool and bitwise-identity suites rely on.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np
import pytest

from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.pencil import PencilDecomposition
from repro.spectral.grid import Grid


# --------------------------------------------------------------------------- #
# grids
# --------------------------------------------------------------------------- #
@lru_cache(maxsize=None)
def make_grid(shape: "int | Tuple[int, int, int]") -> Grid:
    """Cached grid factory: ``make_grid(16)`` or ``make_grid((8, 12, 10))``.

    Grids are immutable (frozen dataclass), so caching them keeps
    session-scoped fixtures and ad-hoc factory calls pointing at the same
    object — and pool keys (which include the grid) identical across tests.
    """
    if isinstance(shape, int):
        shape = (shape, shape, shape)
    return Grid(tuple(int(n) for n in shape))


# --------------------------------------------------------------------------- #
# synthetic fields (pinned seeds)
# --------------------------------------------------------------------------- #
def smooth_scalar_field(grid: Grid, seed: int = 0, modes: int = 2) -> np.ndarray:
    """Band-limited random smooth scalar field (exactly representable)."""
    rng_local = np.random.default_rng(seed)
    x1, x2, x3 = grid.coordinates(sparse=True)
    field = np.zeros(grid.shape, dtype=grid.dtype)
    for _ in range(4):
        k = rng_local.integers(1, modes + 1, size=3)
        phase = rng_local.uniform(0, 2 * np.pi, size=3)
        amp = rng_local.uniform(0.2, 1.0)
        field = field + amp * (
            np.sin(k[0] * x1 + phase[0])
            * np.sin(k[1] * x2 + phase[1])
            * np.sin(k[2] * x3 + phase[2])
        )
    return field


def smooth_vector_field(grid: Grid, seed: int = 0, modes: int = 2) -> np.ndarray:
    """Band-limited random smooth vector field."""
    return np.stack(
        [smooth_scalar_field(grid, seed=seed + comp, modes=modes) for comp in range(3)],
        axis=0,
    )


def smooth_velocity_field(grid: Grid, seed: int = 0, amplitude: float = 0.5) -> np.ndarray:
    """The test-suite's standard transport velocity: a scaled smooth field."""
    return amplitude * smooth_vector_field(grid, seed=seed)


def random_field(grid: Grid, seed: int = 0) -> np.ndarray:
    """White-noise scalar field (for bitwise pins, where smoothness is moot)."""
    return np.random.default_rng(seed).standard_normal(grid.shape)


def random_points(
    num_points: int,
    seed: int = 0,
    low: float = -2 * np.pi,
    high: float = 4 * np.pi,
) -> np.ndarray:
    """Random physical coordinates of shape ``(3, num_points)``.

    The default bounds deliberately leave the box ``[0, 2*pi)`` so the
    periodic wrapping paths are always exercised.
    """
    return np.random.default_rng(seed).uniform(low, high, size=(3, num_points))


def departure_like_points(grid: Grid, seed: int = 0, cells: float = 3.0) -> np.ndarray:
    """Grid-ordered points displaced by a few cells — the SL access pattern."""
    rng = np.random.default_rng(seed)
    spacing = np.asarray(grid.spacing)[:, None]
    return grid.coordinate_stack().reshape(3, -1) + spacing * cells * rng.standard_normal(
        (3, grid.num_points)
    )


# --------------------------------------------------------------------------- #
# distributed harness
# --------------------------------------------------------------------------- #
def make_scatter_plan(
    grid: Grid,
    pgrid: Tuple[int, int],
    points_per_rank: int = 150,
    seed: int = 0,
    points: Optional[Sequence[np.ndarray]] = None,
    **plan_kwargs,
):
    """Decomposition + communicator + per-rank points + scatter plan.

    The shared setup of the ``tests/parallel`` suite: a pencil decomposition
    over ``pgrid`` tasks, a fresh simulated communicator, one pinned-seed
    random point cloud per rank (or the *points* given), and the
    :class:`~repro.parallel.scatter.ScatterInterpolationPlan` built from
    them.  Returns ``(deco, comm, points, plan)``.
    """
    from repro.parallel.scatter import ScatterInterpolationPlan

    deco = PencilDecomposition(grid.shape, *pgrid)
    comm = SimulatedCommunicator(deco.num_tasks)
    if points is None:
        rng = np.random.default_rng(seed)
        points = [
            rng.uniform(-5, max(grid.shape), size=(3, points_per_rank))
            for _ in range(deco.num_tasks)
        ]
    plan = ScatterInterpolationPlan(grid, deco, comm, points, **plan_kwargs)
    return deco, comm, points, plan


# --------------------------------------------------------------------------- #
# backend parametrization helpers
# --------------------------------------------------------------------------- #
def interp_backend_params() -> List:
    """Available interpolation backends as params, numba rows marked."""
    from repro.transport.kernels import available_backends

    return [
        pytest.param(name, marks=[pytest.mark.numba] if name == "numba" else [])
        for name in available_backends()
    ]
