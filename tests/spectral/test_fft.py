"""Tests for repro.spectral.fft."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.fft import FourierTransform
from repro.spectral.grid import Grid


@pytest.fixture()
def fft16():
    return FourierTransform(Grid((16, 16, 16)))


class TestRoundTrip:
    def test_forward_backward_identity(self, fft16, rng):
        field = rng.standard_normal(fft16.grid.shape)
        np.testing.assert_allclose(fft16.backward(fft16.forward(field)), field, atol=1e-12)

    def test_round_trip_anisotropic(self):
        grid = Grid((8, 12, 10))
        fft = FourierTransform(grid)
        field = np.random.default_rng(0).standard_normal(grid.shape)
        np.testing.assert_allclose(fft.backward(fft.forward(field)), field, atol=1e-12)

    def test_round_trip_odd_last_axis(self):
        grid = Grid((8, 8, 9))
        fft = FourierTransform(grid)
        field = np.random.default_rng(1).standard_normal(grid.shape)
        np.testing.assert_allclose(fft.backward(fft.forward(field)), field, atol=1e-12)

    def test_vector_round_trip(self, fft16, rng):
        v = rng.standard_normal((3, *fft16.grid.shape))
        np.testing.assert_allclose(
            fft16.backward_vector(fft16.forward_vector(v)), v, atol=1e-12
        )


class TestShapesAndValidation:
    def test_spectral_shape(self, fft16):
        assert fft16.spectral_shape == (16, 16, 9)

    def test_forward_rejects_wrong_shape(self, fft16):
        with pytest.raises(ValueError):
            fft16.forward(np.zeros((8, 8, 8)))

    def test_backward_rejects_wrong_shape(self, fft16):
        with pytest.raises(ValueError):
            fft16.backward(np.zeros((16, 16, 16), dtype=complex))

    def test_vector_shape_validation(self, fft16):
        with pytest.raises(ValueError):
            fft16.forward_vector(np.zeros(fft16.grid.shape))
        with pytest.raises(ValueError):
            fft16.backward_vector(np.zeros((2, *fft16.spectral_shape), dtype=complex))

    def test_backward_returns_real_dtype(self, fft16, rng):
        out = fft16.backward(fft16.forward(rng.standard_normal(fft16.grid.shape)))
        assert out.dtype == fft16.grid.dtype


class TestSpectralContent:
    def test_constant_field_has_only_zero_mode(self, fft16):
        spectrum = fft16.forward(np.full(fft16.grid.shape, 3.0))
        assert spectrum[0, 0, 0] == pytest.approx(3.0 * fft16.grid.num_points)
        spectrum[0, 0, 0] = 0.0
        assert np.max(np.abs(spectrum)) < 1e-9

    def test_single_sine_mode(self):
        grid = Grid((16, 16, 16))
        fft = FourierTransform(grid)
        x1 = grid.coordinates()[0]
        spectrum = fft.forward(np.sin(2 * x1))
        magnitude = np.abs(spectrum)
        # energy concentrated at k1 = +-2, k2 = k3 = 0
        assert magnitude[2, 0, 0] > 1.0
        total = magnitude.sum()
        assert magnitude[2, 0, 0] + magnitude[-2, 0, 0] == pytest.approx(total, rel=1e-9)

    def test_apply_identity_symbol(self, fft16, rng):
        field = rng.standard_normal(fft16.grid.shape)
        symbol = np.ones(fft16.spectral_shape)
        np.testing.assert_allclose(fft16.apply_symbol(field, symbol), field, atol=1e-12)

    def test_apply_zero_symbol(self, fft16, rng):
        field = rng.standard_normal(fft16.grid.shape)
        out = fft16.apply_symbol(field, np.zeros(fft16.spectral_shape))
        np.testing.assert_allclose(out, 0.0, atol=1e-14)


class TestCounters:
    def test_counters_track_transforms(self, fft16, rng):
        fft16.reset_counters()
        field = rng.standard_normal(fft16.grid.shape)
        fft16.backward(fft16.forward(field))
        assert fft16.counters.forward == 1
        assert fft16.counters.backward == 1
        assert fft16.counters.total == 2

    def test_apply_symbol_counts_two_transforms(self, fft16, rng):
        fft16.reset_counters()
        fft16.apply_symbol(rng.standard_normal(fft16.grid.shape), np.ones(fft16.spectral_shape))
        assert fft16.counters.total == 2

    def test_reset(self, fft16, rng):
        fft16.forward(rng.standard_normal(fft16.grid.shape))
        fft16.reset_counters()
        assert fft16.counters.total == 0


class TestParsevalProperty:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_parseval(self, seed):
        grid = Grid((8, 8, 8))
        fft = FourierTransform(grid)
        field = np.random.default_rng(seed).standard_normal(grid.shape)
        spectrum = np.fft.fftn(field)
        lhs = np.sum(field**2)
        rhs = np.sum(np.abs(spectrum) ** 2) / grid.num_points
        assert lhs == pytest.approx(rhs, rel=1e-10)

    @given(seed=st.integers(min_value=0, max_value=2**16), scale=st.floats(0.1, 10.0))
    @settings(max_examples=15, deadline=None)
    def test_linearity(self, seed, scale):
        grid = Grid((8, 8, 8))
        fft = FourierTransform(grid)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(grid.shape)
        b = rng.standard_normal(grid.shape)
        lhs = fft.forward(a + scale * b)
        rhs = fft.forward(a) + scale * fft.forward(b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)
