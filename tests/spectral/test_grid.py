"""Tests for repro.spectral.grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.grid import TWO_PI, Grid


class TestConstruction:
    def test_default_domain_is_two_pi_cube(self):
        grid = Grid((8, 8, 8))
        assert grid.lengths == (TWO_PI, TWO_PI, TWO_PI)

    def test_rejects_two_dimensional_shape(self):
        with pytest.raises(ValueError):
            Grid((8, 8))

    def test_rejects_tiny_axis(self):
        with pytest.raises(ValueError):
            Grid((8, 1, 8))

    def test_rejects_nonpositive_lengths(self):
        with pytest.raises(ValueError):
            Grid((8, 8, 8), lengths=(1.0, 0.0, 1.0))

    def test_num_points(self):
        assert Grid((4, 6, 8)).num_points == 4 * 6 * 8

    def test_is_isotropic(self):
        assert Grid((8, 8, 8)).is_isotropic()
        assert not Grid((8, 16, 8)).is_isotropic()

    def test_grid_is_hashable_and_equal(self):
        assert Grid((8, 8, 8)) == Grid((8, 8, 8))
        assert hash(Grid((8, 8, 8))) == hash(Grid((8, 8, 8)))
        assert Grid((8, 8, 8)) != Grid((8, 8, 16))


class TestGeometry:
    def test_spacing_matches_paper_definition(self):
        grid = Grid((16, 16, 16))
        assert grid.spacing == pytest.approx((TWO_PI / 16,) * 3)

    def test_cell_volume_times_points_is_domain_volume(self):
        grid = Grid((8, 12, 10))
        assert grid.cell_volume * grid.num_points == pytest.approx(grid.domain_volume)

    def test_axis_coordinates_start_at_zero_exclude_endpoint(self):
        grid = Grid((8, 8, 8))
        x = grid.axis_coordinates(0)
        assert x[0] == 0.0
        assert x[-1] == pytest.approx(TWO_PI - TWO_PI / 8)

    def test_axis_coordinates_invalid_axis(self):
        with pytest.raises(ValueError):
            Grid((8, 8, 8)).axis_coordinates(3)

    def test_coordinate_stack_shape(self):
        grid = Grid((4, 6, 8))
        assert grid.coordinate_stack().shape == (3, 4, 6, 8)

    def test_coordinates_meshgrid_matches_stack(self):
        grid = Grid((4, 5, 6))
        x1, x2, x3 = grid.coordinates()
        stack = grid.coordinate_stack()
        np.testing.assert_allclose(stack[0], x1)
        np.testing.assert_allclose(stack[2], x3)


class TestWavenumbers:
    def test_integer_wavenumbers_on_default_domain(self):
        grid = Grid((8, 8, 8))
        k = grid.wavenumbers_1d(0)
        assert set(np.round(k).astype(int)) == {0, 1, 2, 3, -4, -3, -2, -1}

    def test_real_axis_wavenumbers_are_half_spectrum(self):
        grid = Grid((8, 8, 8))
        k = grid.wavenumbers_1d(2, real_axis=True)
        np.testing.assert_allclose(k, [0, 1, 2, 3, 4])

    def test_wavenumber_scaling_for_nondefault_length(self):
        grid = Grid((8, 8, 8), lengths=(np.pi, TWO_PI, TWO_PI))
        k = grid.wavenumbers_1d(0)
        # domain half as long -> wavenumbers twice as large
        assert k[1] == pytest.approx(2.0)

    def test_laplacian_symbol_nonpositive(self):
        grid = Grid((8, 10, 12))
        sym = grid.laplacian_symbol()
        assert np.all(sym <= 0.0)
        assert sym.flat[0] == 0.0

    def test_wavenumber_mesh_broadcast_shape(self):
        grid = Grid((4, 6, 8))
        k1, k2, k3 = grid.wavenumber_mesh()
        assert k1.shape == (4, 1, 1)
        assert k2.shape == (1, 6, 1)
        assert k3.shape == (1, 1, 8 // 2 + 1)


class TestFieldFactoriesAndInnerProduct:
    def test_zeros_shapes(self):
        grid = Grid((4, 5, 6))
        assert grid.zeros().shape == (4, 5, 6)
        assert grid.zeros_vector().shape == (3, 4, 5, 6)

    def test_inner_product_of_constants(self):
        grid = Grid((8, 8, 8))
        ones = np.ones(grid.shape)
        assert grid.inner(ones, ones) == pytest.approx(grid.domain_volume)

    def test_norm_of_sine_is_analytic(self):
        # ||sin(x1)||^2 over [0,2pi)^3 = (2pi)^3 / 2
        grid = Grid((16, 16, 16))
        x1 = grid.coordinates()[0]
        field = np.sin(x1)
        assert grid.norm(field) ** 2 == pytest.approx(grid.domain_volume / 2, rel=1e-12)

    def test_inner_rejects_mismatched_shapes(self):
        grid = Grid((4, 4, 4))
        with pytest.raises(ValueError):
            grid.inner(grid.zeros(), np.zeros((5, 4, 4)))

    def test_random_field_is_reproducible(self):
        grid = Grid((4, 4, 4))
        a = grid.random_field(np.random.default_rng(1))
        b = grid.random_field(np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestGridTransfers:
    def test_coarsen_halves_shape(self):
        assert Grid((16, 16, 16)).coarsen().shape == (8, 8, 8)

    def test_refine_doubles_shape(self):
        assert Grid((8, 8, 8)).refine().shape == (16, 16, 16)

    def test_coarsen_never_below_two(self):
        assert Grid((2, 2, 2)).coarsen(4).shape == (2, 2, 2)

    def test_with_shape_preserves_domain(self):
        grid = Grid((8, 8, 8), lengths=(1.0, 2.0, 3.0))
        new = grid.with_shape((16, 16, 16))
        assert new.lengths == grid.lengths

    def test_invalid_factor_raises(self):
        with pytest.raises(ValueError):
            Grid((8, 8, 8)).coarsen(0)
        with pytest.raises(ValueError):
            Grid((8, 8, 8)).refine(-1)


class TestPropertyBased:
    @given(
        n1=st.integers(min_value=2, max_value=20),
        n2=st.integers(min_value=2, max_value=20),
        n3=st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_cell_volume_consistency(self, n1, n2, n3):
        grid = Grid((n1, n2, n3))
        assert grid.cell_volume * grid.num_points == pytest.approx(grid.domain_volume)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_cauchy_schwarz(self, seed):
        grid = Grid((6, 6, 6))
        rng = np.random.default_rng(seed)
        a = grid.random_field(rng)
        b = grid.random_field(rng)
        lhs = abs(grid.inner(a, b))
        rhs = grid.norm(a) * grid.norm(b)
        assert lhs <= rhs * (1 + 1e-12)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_norm_positive_definite(self, seed):
        grid = Grid((5, 6, 7))
        rng = np.random.default_rng(seed)
        a = grid.random_field(rng)
        assert grid.norm(a) >= 0.0
        assert grid.norm(np.zeros(grid.shape)) == 0.0
