"""Tests for repro.spectral.operators.

Spectral derivatives are exact for band-limited fields, so most tests check
analytic identities to near machine precision.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators

from tests.fixtures import smooth_scalar_field, smooth_vector_field


@pytest.fixture(scope="module")
def ops():
    return SpectralOperators(Grid((16, 16, 16)))


def _trig_field(grid):
    x1, x2, x3 = grid.coordinates(sparse=True)
    return np.sin(2 * x1) * np.cos(x2) + np.sin(x3)


class TestDerivatives:
    def test_derivative_of_sine(self, ops):
        grid = ops.grid
        x1 = grid.coordinates()[0]
        d = ops.derivative(np.sin(3 * x1), axis=0)
        np.testing.assert_allclose(d, 3 * np.cos(3 * x1), atol=1e-10)

    def test_derivative_invalid_axis(self, ops):
        with pytest.raises(ValueError):
            ops.derivative(ops.grid.zeros(), axis=3)

    def test_gradient_matches_analytic(self, ops):
        grid = ops.grid
        x1, x2, x3 = grid.coordinates()
        field = np.sin(x1) * np.sin(2 * x2) * np.cos(x3)
        grad = ops.gradient(field)
        np.testing.assert_allclose(grad[0], np.cos(x1) * np.sin(2 * x2) * np.cos(x3), atol=1e-10)
        np.testing.assert_allclose(grad[1], 2 * np.sin(x1) * np.cos(2 * x2) * np.cos(x3), atol=1e-10)
        np.testing.assert_allclose(grad[2], -np.sin(x1) * np.sin(2 * x2) * np.sin(x3), atol=1e-10)

    def test_gradient_of_constant_is_zero(self, ops):
        grad = ops.gradient(np.full(ops.grid.shape, 2.5))
        np.testing.assert_allclose(grad, 0.0, atol=1e-12)

    def test_divergence_of_gradient_is_laplacian(self, ops):
        field = _trig_field(ops.grid)
        lhs = ops.divergence(ops.gradient(field))
        rhs = ops.laplacian(field)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    def test_anisotropic_grid_derivative(self):
        ops = SpectralOperators(Grid((8, 12, 10)))
        x2 = ops.grid.coordinates()[1]
        d = ops.derivative(np.cos(2 * x2), axis=1)
        np.testing.assert_allclose(d, -2 * np.sin(2 * x2), atol=1e-10)

    def test_jacobian_diagonal_matches_derivatives(self, ops):
        v = smooth_vector_field(ops.grid, seed=5)
        jac = ops.jacobian(v)
        for i in range(3):
            np.testing.assert_allclose(jac[i, i], ops.derivative(v[i], i), atol=1e-10)


class TestLaplacianFamily:
    def test_laplacian_eigenfunction(self, ops):
        x1, x2, _ = ops.grid.coordinates()
        field = np.sin(2 * x1) * np.cos(3 * x2)
        np.testing.assert_allclose(ops.laplacian(field), -(4 + 9) * field, atol=1e-9)

    def test_inverse_laplacian_is_right_inverse_on_zero_mean(self, ops):
        field = smooth_scalar_field(ops.grid, seed=1)
        field -= field.mean()
        recovered = ops.laplacian(ops.inverse_laplacian(field))
        np.testing.assert_allclose(recovered, field, atol=1e-9)

    def test_inverse_laplacian_kills_constant_mode(self, ops):
        out = ops.inverse_laplacian(np.full(ops.grid.shape, 4.0))
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    def test_biharmonic_is_laplacian_squared(self, ops):
        field = smooth_scalar_field(ops.grid, seed=2)
        np.testing.assert_allclose(
            ops.biharmonic(field), ops.laplacian(ops.laplacian(field)), atol=1e-8
        )

    def test_inverse_biharmonic_right_inverse(self, ops):
        field = smooth_scalar_field(ops.grid, seed=3)
        field -= field.mean()
        np.testing.assert_allclose(
            ops.biharmonic(ops.inverse_biharmonic(field)), field, atol=1e-8
        )

    def test_vector_laplacian_componentwise(self, ops):
        v = smooth_vector_field(ops.grid, seed=4)
        out = ops.vector_laplacian(v)
        for i in range(3):
            np.testing.assert_allclose(out[i], ops.laplacian(v[i]), atol=1e-10)

    def test_vector_biharmonic_componentwise(self, ops):
        v = smooth_vector_field(ops.grid, seed=6)
        out = ops.vector_biharmonic(v)
        for i in range(3):
            np.testing.assert_allclose(out[i], ops.biharmonic(v[i]), atol=1e-8)


class TestVectorCalculusIdentities:
    def test_divergence_of_curl_is_zero(self, ops):
        v = smooth_vector_field(ops.grid, seed=7)
        div_curl = ops.divergence(ops.curl(v))
        assert ops.grid.norm(div_curl) < 1e-9

    def test_curl_of_gradient_is_zero(self, ops):
        field = smooth_scalar_field(ops.grid, seed=8)
        curl_grad = ops.curl(ops.gradient(field))
        assert ops.grid.norm(curl_grad) < 1e-9

    def test_divergence_validates_shape(self, ops):
        with pytest.raises(ValueError):
            ops.divergence(ops.grid.zeros())

    def test_integration_by_parts(self, ops):
        # <grad f, v> = -<f, div v> on the periodic domain
        grid = ops.grid
        f = smooth_scalar_field(grid, seed=9)
        v = smooth_vector_field(grid, seed=10)
        lhs = grid.inner(ops.gradient(f), v)
        rhs = -grid.inner(f, ops.divergence(v))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-10)


class TestLerayProjection:
    def test_projected_field_is_divergence_free(self, ops):
        v = smooth_vector_field(ops.grid, seed=11)
        pv = ops.leray_project(v)
        assert ops.is_divergence_free(pv, tol=1e-9)

    def test_projection_is_idempotent(self, ops):
        v = smooth_vector_field(ops.grid, seed=12)
        pv = ops.leray_project(v)
        ppv = ops.leray_project(pv)
        np.testing.assert_allclose(ppv, pv, atol=1e-10)

    def test_divergence_free_field_unchanged(self, ops):
        x1, x2, x3 = ops.grid.coordinates()
        v = np.stack([np.sin(x2) * np.sin(x3), np.sin(x1), np.cos(x1) * np.sin(x2)], axis=0)
        assert ops.is_divergence_free(v, tol=1e-9)
        np.testing.assert_allclose(ops.leray_project(v), v, atol=1e-9)

    def test_gradient_field_projects_to_constant(self, ops):
        # grad f is curl-free; its divergence-free part is only its mean (zero here)
        f = smooth_scalar_field(ops.grid, seed=13)
        pv = ops.leray_project(ops.gradient(f))
        assert ops.grid.norm(pv) < 1e-8

    def test_projection_is_orthogonal(self, ops):
        # <P v, (I - P) v> = 0
        v = smooth_vector_field(ops.grid, seed=14)
        pv = ops.leray_project(v)
        residual = v - pv
        assert abs(ops.grid.inner(pv, residual)) < 1e-8

    def test_projection_is_symmetric(self, ops):
        u = smooth_vector_field(ops.grid, seed=15)
        w = smooth_vector_field(ops.grid, seed=16)
        lhs = ops.grid.inner(ops.leray_project(u), w)
        rhs = ops.grid.inner(u, ops.leray_project(w))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-10)


class TestOperatorLinearityProperty:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        alpha=st.floats(min_value=-3.0, max_value=3.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_laplacian_linearity(self, seed, alpha):
        ops = SpectralOperators(Grid((8, 8, 8)))
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(ops.grid.shape)
        b = rng.standard_normal(ops.grid.shape)
        lhs = ops.laplacian(a + alpha * b)
        rhs = ops.laplacian(a) + alpha * ops.laplacian(b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_laplacian_self_adjoint(self, seed):
        ops = SpectralOperators(Grid((8, 8, 8)))
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(ops.grid.shape)
        b = rng.standard_normal(ops.grid.shape)
        lhs = ops.grid.inner(ops.laplacian(a), b)
        rhs = ops.grid.inner(a, ops.laplacian(b))
        assert lhs == pytest.approx(rhs, rel=1e-8, abs=1e-9)
