"""Tests for the pluggable FFT backend subsystem.

Covers the registry (selection by name, environment variable, and instance),
per-backend numerical correctness (round trip, Parseval, batched-vs-looped
equivalence), exact FFT-counter parity across backends, clean skipping of
the optional ``pyfftw`` backend, and validation of the distributed
pencil-decomposed FFT against every available serial backend.
"""

import numpy as np
import pytest

from repro.parallel.distributed_fft import DistributedFFT
from repro.parallel.pencil import PencilDecomposition
from repro.spectral import backends
from repro.spectral.backends import (
    BACKEND_ENV_VAR,
    BackendUnavailableError,
    NumpyFFTBackend,
    available_backends,
    default_backend_name,
    get_backend,
    registered_backends,
)
from repro.spectral.fft import FourierTransform
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators

ALL_AVAILABLE = available_backends()

pyfftw_missing = "pyfftw" not in ALL_AVAILABLE


@pytest.fixture(params=ALL_AVAILABLE)
def backend_name(request) -> str:
    return request.param


# --------------------------------------------------------------------------- #
# registry behaviour
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"numpy", "scipy", "pyfftw"} <= set(registered_backends())

    def test_numpy_and_scipy_always_available(self):
        assert "numpy" in ALL_AVAILABLE
        assert "scipy" in ALL_AVAILABLE

    def test_default_is_numpy_without_env(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend_name() == "numpy"
        assert get_backend(None).name == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scipy")
        assert default_backend_name() == "scipy"
        fft = FourierTransform(Grid((8, 8, 8)))
        assert fft.backend_name == "scipy"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scipy")
        fft = FourierTransform(Grid((8, 8, 8)), backend="numpy")
        assert fft.backend_name == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown FFT backend"):
            get_backend("not-a-backend")

    def test_malformed_env_backend_is_a_clear_error(self, monkeypatch):
        """An env typo names the variable and lists the registered backends."""
        monkeypatch.setenv(BACKEND_ENV_VAR, "numppy")
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR) as excinfo:
            default_backend_name()
        assert "numpy" in str(excinfo.value) and "scipy" in str(excinfo.value)
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR):
            get_backend(None)  # the env path of every consumer

    def test_instances_are_singletons(self, backend_name):
        assert get_backend(backend_name) is get_backend(backend_name)

    def test_instance_passthrough(self):
        instance = NumpyFFTBackend()
        assert get_backend(instance) is instance

    def test_non_backend_object_rejected_early(self):
        with pytest.raises(TypeError, match="FFTBackend protocol"):
            get_backend(object())

    @pytest.mark.skipif(not pyfftw_missing, reason="pyfftw is installed here")
    def test_missing_pyfftw_reported_cleanly(self):
        assert "pyfftw" not in ALL_AVAILABLE
        with pytest.raises(BackendUnavailableError, match="pyfftw"):
            get_backend("pyfftw")

    def test_custom_backend_registration(self):
        class EchoBackend(NumpyFFTBackend):
            name = "echo-test"

        backends.register_backend("echo-test", EchoBackend)
        try:
            assert "echo-test" in registered_backends()
            assert get_backend("echo-test").name == "echo-test"
        finally:
            backends._REGISTRY.pop("echo-test", None)
            backends._INSTANCES.pop("echo-test", None)


# --------------------------------------------------------------------------- #
# numerical correctness, per backend
# --------------------------------------------------------------------------- #
class TestPerBackendCorrectness:
    @pytest.mark.parametrize("shape", [(16, 16, 16), (8, 12, 10), (8, 8, 9)])
    def test_scalar_round_trip(self, backend_name, shape):
        grid = Grid(shape)
        fft = FourierTransform(grid, backend=backend_name)
        field = np.random.default_rng(0).standard_normal(grid.shape)
        np.testing.assert_allclose(fft.backward(fft.forward(field)), field, atol=1e-12)

    def test_vector_round_trip(self, backend_name):
        grid = Grid((12, 12, 12))
        fft = FourierTransform(grid, backend=backend_name)
        v = np.random.default_rng(1).standard_normal((3, *grid.shape))
        np.testing.assert_allclose(fft.inverse_vector(fft.forward_vector(v)), v, atol=1e-12)

    def test_parseval(self, backend_name):
        grid = Grid((8, 8, 8))
        fft = FourierTransform(grid, backend=backend_name)
        field = np.random.default_rng(2).standard_normal(grid.shape)
        spectrum = fft.forward(field)
        # half-spectrum Parseval: double every mode that has a conjugate twin
        weights = np.full(fft.spectral_shape, 2.0)
        weights[..., 0] = 1.0
        if grid.shape[2] % 2 == 0:
            weights[..., -1] = 1.0
        lhs = np.sum(field**2)
        rhs = np.sum(weights * np.abs(spectrum) ** 2) / grid.num_points
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_matches_numpy_reference(self, backend_name):
        grid = Grid((8, 10, 12))
        fft = FourierTransform(grid, backend=backend_name)
        field = np.random.default_rng(3).standard_normal(grid.shape)
        np.testing.assert_allclose(fft.forward(field), np.fft.rfftn(field), atol=1e-10)

    def test_batched_equals_per_component(self, backend_name):
        grid = Grid((10, 8, 12))
        fft = FourierTransform(grid, backend=backend_name)
        v = np.random.default_rng(4).standard_normal((3, *grid.shape))
        batched = fft.forward_vector(v)
        looped = np.stack([np.fft.rfftn(v[i]) for i in range(3)], axis=0)
        np.testing.assert_allclose(batched, looped, atol=1e-10)

    def test_backward_vector_alias(self, backend_name):
        grid = Grid((8, 8, 8))
        fft = FourierTransform(grid, backend=backend_name)
        v = np.random.default_rng(5).standard_normal((3, *grid.shape))
        spectra = fft.forward_vector(v)
        np.testing.assert_allclose(
            fft.backward_vector(spectra), fft.inverse_vector(spectra), atol=0
        )


# --------------------------------------------------------------------------- #
# FFT-counter parity across backends
# --------------------------------------------------------------------------- #
def _canonical_operator_workload(ops: SpectralOperators) -> None:
    """Fixed sequence of spectral operations used for counter-parity checks."""
    rng = np.random.default_rng(7)
    scalar = rng.standard_normal(ops.grid.shape)
    vector = rng.standard_normal((3, *ops.grid.shape))
    ops.gradient(scalar)
    ops.laplacian(scalar)
    ops.divergence(vector)
    ops.curl(vector)
    ops.jacobian(vector)
    ops.leray_project(vector)
    ops.apply_vector_symbol(vector, np.ones(ops.fft.spectral_shape))


class TestCounterParity:
    def test_operator_workload_counts_identical(self):
        """The counters must be exactly equal no matter which engine runs."""
        totals = {}
        for name in ALL_AVAILABLE:
            ops = SpectralOperators(Grid((8, 8, 8)), fft_backend=name)
            _canonical_operator_workload(ops)
            totals[name] = (ops.fft.counters.forward, ops.fft.counters.backward)
        assert len(set(totals.values())) == 1, f"counter mismatch: {totals}"

    def test_batched_vector_transform_counts_three(self, backend_name):
        grid = Grid((8, 8, 8))
        fft = FourierTransform(grid, backend=backend_name)
        v = np.random.default_rng(8).standard_normal((3, *grid.shape))
        fft.inverse_vector(fft.forward_vector(v))
        assert fft.counters.forward == 3
        assert fft.counters.backward == 3

    def test_end_to_end_solve_counter_parity(self):
        """Acceptance check: identical FFT totals on a full registration solve.

        The solver is configured for a deterministic amount of work
        (constant, effectively-zero PCG forcing so every inner solve runs to
        its iteration cap) so that the transform totals depend only on the
        algorithm, not on floating-point noise between engines.
        """
        from repro.core.optim.gauss_newton import SolverOptions
        from repro.core.registration import RegistrationSolver
        from repro.data.synthetic import synthetic_registration_problem

        synthetic = synthetic_registration_problem(8)
        totals = {}
        for name in ALL_AVAILABLE:
            solver = RegistrationSolver(
                beta=1e-2,
                num_time_steps=2,
                options=SolverOptions(
                    max_newton_iterations=2,
                    max_krylov_iterations=3,
                    forcing="constant",
                    constant_forcing=1e-14,
                    gradient_tolerance=1e-14,
                ),
                fft_backend=name,
            )
            result = solver.run(synthetic.template, synthetic.reference, grid=synthetic.grid)
            totals[name] = result.problem.operators.fft.counters.total
        assert len(set(totals.values())) == 1, f"end-to-end counter mismatch: {totals}"
        assert next(iter(totals.values())) > 0


# --------------------------------------------------------------------------- #
# distributed FFT validates against every serial backend
# --------------------------------------------------------------------------- #
class TestDistributedAgainstSerialBackends:
    def test_forward_matches_global_fftn(self, backend_name):
        deco = PencilDecomposition((8, 8, 8), p1=2, p2=2)
        dfft = DistributedFFT(deco, backend=backend_name)
        field = np.random.default_rng(9).standard_normal((8, 8, 8))
        np.testing.assert_allclose(
            dfft.forward_global(field), np.fft.fftn(field), atol=1e-10
        )

    def test_round_trip(self, backend_name):
        deco = PencilDecomposition((8, 12, 10), p1=2, p2=2)
        dfft = DistributedFFT(deco, backend=backend_name)
        field = np.random.default_rng(10).standard_normal((8, 12, 10))
        out = dfft.backward_global(dfft.forward_global(field))
        np.testing.assert_allclose(np.real(out), field, atol=1e-10)
