"""Tests for repro.spectral.filters."""

import numpy as np
import pytest

from repro.spectral.filters import (
    gaussian_smooth,
    gaussian_symbol,
    low_pass_filter,
    prolong,
    remove_padding,
    restrict,
    zero_pad,
)
from repro.spectral.grid import Grid

from tests.fixtures import smooth_scalar_field


class TestGaussianSmoothing:
    def test_preserves_constant_field(self):
        grid = Grid((8, 8, 8))
        field = np.full(grid.shape, 1.7)
        np.testing.assert_allclose(gaussian_smooth(field, grid), field, atol=1e-12)

    def test_preserves_mean(self, rng):
        grid = Grid((16, 16, 16))
        field = rng.standard_normal(grid.shape)
        smoothed = gaussian_smooth(field, grid, sigma=0.5)
        assert smoothed.mean() == pytest.approx(field.mean(), abs=1e-12)

    def test_reduces_high_frequency_content(self, rng):
        grid = Grid((16, 16, 16))
        field = rng.standard_normal(grid.shape)
        smoothed = gaussian_smooth(field, grid, sigma=1.0)
        assert np.var(smoothed) < np.var(field)

    def test_zero_sigma_is_identity(self, rng):
        grid = Grid((8, 8, 8))
        field = rng.standard_normal(grid.shape)
        np.testing.assert_allclose(gaussian_smooth(field, grid, sigma=0.0), field, atol=1e-12)

    def test_larger_sigma_smooths_more(self, rng):
        grid = Grid((16, 16, 16))
        field = rng.standard_normal(grid.shape)
        mild = gaussian_smooth(field, grid, sigma=0.2)
        strong = gaussian_smooth(field, grid, sigma=1.0)
        assert np.var(strong) < np.var(mild)

    def test_default_sigma_is_grid_spacing(self):
        grid = Grid((8, 8, 8))
        np.testing.assert_allclose(
            gaussian_symbol(grid), gaussian_symbol(grid, sigma=grid.spacing)
        )

    def test_symbol_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            gaussian_symbol(Grid((8, 8, 8)), sigma=(-1.0, 1.0, 1.0))

    def test_anisotropic_sigma(self, rng):
        grid = Grid((8, 8, 8))
        field = rng.standard_normal(grid.shape)
        out = gaussian_smooth(field, grid, sigma=(0.0, 0.0, 2.0))
        # smoothing only along the third axis preserves averages along it
        np.testing.assert_allclose(out.mean(axis=2), field.mean(axis=2), atol=1e-10)


class TestLowPass:
    def test_constant_preserved(self):
        grid = Grid((8, 8, 8))
        field = np.full(grid.shape, 2.0)
        np.testing.assert_allclose(low_pass_filter(field, grid), field, atol=1e-12)

    def test_cutoff_one_keeps_everything(self, rng):
        grid = Grid((8, 8, 8))
        field = rng.standard_normal(grid.shape)
        np.testing.assert_allclose(low_pass_filter(field, grid, 1.0), field, atol=1e-10)

    def test_removes_nyquist_mode(self):
        grid = Grid((8, 8, 8))
        x1 = grid.coordinates()[0]
        nyquist = np.cos(4 * x1)
        filtered = low_pass_filter(nyquist, grid, cutoff_fraction=2.0 / 3.0)
        assert np.max(np.abs(filtered)) < 1e-10

    def test_keeps_low_mode(self):
        grid = Grid((8, 8, 8))
        x1 = grid.coordinates()[0]
        low = np.cos(x1)
        np.testing.assert_allclose(low_pass_filter(low, grid), low, atol=1e-10)

    def test_invalid_cutoff_raises(self):
        with pytest.raises(ValueError):
            low_pass_filter(np.zeros((8, 8, 8)), Grid((8, 8, 8)), cutoff_fraction=0.0)


class TestZeroPadding:
    def test_pad_shape(self):
        image = np.ones((4, 5, 6))
        padded = zero_pad(image, 2)
        assert padded.shape == (8, 9, 10)

    def test_pad_and_crop_round_trip(self, rng):
        image = rng.standard_normal((4, 5, 6))
        np.testing.assert_array_equal(remove_padding(zero_pad(image, 3), 3), image)

    def test_pad_margin_is_zero(self):
        padded = zero_pad(np.ones((4, 4, 4)), 1)
        assert padded[0].max() == 0.0
        assert padded[-1].max() == 0.0
        assert padded[:, 0].max() == 0.0

    def test_asymmetric_pad_widths(self):
        padded = zero_pad(np.ones((4, 4, 4)), (1, 2, 0))
        assert padded.shape == (6, 8, 4)

    def test_zero_pad_requires_3d(self):
        with pytest.raises(ValueError):
            zero_pad(np.ones((4, 4)), 1)

    def test_negative_pad_rejected(self):
        with pytest.raises(ValueError):
            zero_pad(np.ones((4, 4, 4)), -1)

    def test_zero_width_is_identity(self, rng):
        image = rng.standard_normal((4, 4, 4))
        np.testing.assert_array_equal(zero_pad(image, 0), image)


class TestGridTransfer:
    def test_restrict_then_prolong_preserves_low_modes(self):
        fine = Grid((16, 16, 16))
        coarse = Grid((8, 8, 8))
        field = smooth_scalar_field(fine, seed=3, modes=2)
        down = restrict(field, fine, coarse)
        up = prolong(down, coarse, fine)
        np.testing.assert_allclose(up, field, atol=1e-8)

    def test_restrict_shape(self):
        fine, coarse = Grid((16, 16, 16)), Grid((8, 8, 8))
        out = restrict(np.zeros(fine.shape), fine, coarse)
        assert out.shape == coarse.shape

    def test_prolong_shape(self):
        fine, coarse = Grid((16, 16, 16)), Grid((8, 8, 8))
        out = prolong(np.zeros(coarse.shape), coarse, fine)
        assert out.shape == fine.shape

    def test_constant_preserved_by_transfer(self):
        fine, coarse = Grid((16, 16, 16)), Grid((8, 8, 8))
        const = np.full(fine.shape, 3.3)
        np.testing.assert_allclose(restrict(const, fine, coarse), 3.3, atol=1e-10)
        np.testing.assert_allclose(prolong(np.full(coarse.shape, 3.3), coarse, fine), 3.3, atol=1e-10)

    def test_restrict_rejects_finer_target(self):
        with pytest.raises(ValueError):
            restrict(np.zeros((8, 8, 8)), Grid((8, 8, 8)), Grid((16, 16, 16)))

    def test_prolong_rejects_coarser_target(self):
        with pytest.raises(ValueError):
            prolong(np.zeros((16, 16, 16)), Grid((16, 16, 16)), Grid((8, 8, 8)))

    def test_transfer_requires_same_domain(self):
        fine = Grid((16, 16, 16), lengths=(1.0, 1.0, 1.0))
        coarse = Grid((8, 8, 8))
        with pytest.raises(ValueError):
            restrict(np.zeros(fine.shape), fine, coarse)

    def test_anisotropic_transfer(self):
        fine = Grid((16, 12, 8))
        coarse = Grid((8, 6, 4))
        field = smooth_scalar_field(fine, seed=5, modes=1)
        up = prolong(restrict(field, fine, coarse), coarse, fine)
        np.testing.assert_allclose(up, field, atol=1e-8)
