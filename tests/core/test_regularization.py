"""Tests for repro.core.regularization."""

import numpy as np
import pytest

from repro.core.regularization import (
    H1Regularization,
    H2Regularization,
    H3Regularization,
    make_regularization,
)
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators

from tests.fixtures import smooth_vector_field


@pytest.fixture(scope="module")
def ops():
    return SpectralOperators(Grid((16, 16, 16)))


class TestFactory:
    def test_factory_names(self, ops):
        assert isinstance(make_regularization("h1", ops, 1.0), H1Regularization)
        assert isinstance(make_regularization("H2", ops, 1.0), H2Regularization)
        assert isinstance(make_regularization("h3", ops, 1.0), H3Regularization)

    def test_unknown_name_rejected(self, ops):
        with pytest.raises(ValueError):
            make_regularization("tv", ops, 1.0)

    def test_invalid_beta_rejected(self, ops):
        with pytest.raises(ValueError):
            H1Regularization(ops, 0.0)
        with pytest.raises(ValueError):
            H1Regularization(ops, -1.0)

    def test_with_beta_returns_same_type(self, ops):
        reg = H2Regularization(ops, 1e-2)
        new = reg.with_beta(1e-3)
        assert isinstance(new, H2Regularization)
        assert new.beta == pytest.approx(1e-3)
        assert reg.beta == pytest.approx(1e-2)


class TestEnergyAndGradient:
    def test_energy_zero_for_zero_velocity(self, ops):
        reg = H1Regularization(ops, 1e-2)
        assert reg.energy(ops.grid.zeros_vector()) == 0.0

    def test_energy_zero_for_constant_velocity(self, ops):
        reg = H1Regularization(ops, 1e-2)
        v = ops.grid.zeros_vector()
        v += 2.0
        assert reg.energy(v) == pytest.approx(0.0, abs=1e-10)

    def test_energy_positive_for_nonconstant_velocity(self, ops):
        reg = H1Regularization(ops, 1e-2)
        assert reg.energy(smooth_vector_field(ops.grid, seed=1)) > 0.0

    def test_h1_energy_matches_gradient_norm(self, ops):
        # beta/2 ||grad v||^2 = beta/2 sum_i <grad v_i, grad v_i>
        beta = 0.37
        reg = H1Regularization(ops, beta)
        v = smooth_vector_field(ops.grid, seed=2)
        explicit = 0.0
        for comp in range(3):
            grad = ops.gradient(v[comp])
            explicit += ops.grid.inner(grad, grad)
        assert reg.energy(v) == pytest.approx(0.5 * beta * explicit, rel=1e-8)

    def test_h2_energy_matches_laplacian_norm(self, ops):
        beta = 0.51
        reg = H2Regularization(ops, beta)
        v = smooth_vector_field(ops.grid, seed=3)
        explicit = sum(
            ops.grid.inner(ops.laplacian(v[i]), ops.laplacian(v[i])) for i in range(3)
        )
        assert reg.energy(v) == pytest.approx(0.5 * beta * explicit, rel=1e-8)

    def test_gradient_is_beta_times_operator(self, ops):
        reg = H1Regularization(ops, 2.0)
        v = smooth_vector_field(ops.grid, seed=4)
        np.testing.assert_allclose(reg.gradient(v), 2.0 * reg.apply_operator(v), atol=1e-10)

    def test_h1_operator_is_negative_laplacian(self, ops):
        reg = H1Regularization(ops, 1.0)
        v = smooth_vector_field(ops.grid, seed=5)
        np.testing.assert_allclose(reg.apply_operator(v), -ops.vector_laplacian(v), atol=1e-8)

    def test_h2_operator_is_biharmonic(self, ops):
        reg = H2Regularization(ops, 1.0)
        v = smooth_vector_field(ops.grid, seed=6)
        np.testing.assert_allclose(reg.apply_operator(v), ops.vector_biharmonic(v), atol=1e-7)

    def test_gradient_consistent_with_energy_finite_difference(self, ops):
        reg = H1Regularization(ops, 1e-1)
        grid = ops.grid
        v = 0.5 * smooth_vector_field(grid, seed=7)
        dv = 0.5 * smooth_vector_field(grid, seed=8)
        eps = 1e-6
        fd = (reg.energy(v + eps * dv) - reg.energy(v - eps * dv)) / (2 * eps)
        assert fd == pytest.approx(grid.inner(reg.gradient(v), dv), rel=1e-6)

    def test_hessian_matvec_equals_gradient_for_quadratic(self, ops):
        reg = H2Regularization(ops, 1e-2)
        v = smooth_vector_field(ops.grid, seed=9)
        np.testing.assert_allclose(reg.hessian_matvec(v), reg.gradient(v), atol=1e-12)

    def test_energy_scales_quadratically(self, ops):
        reg = H1Regularization(ops, 1e-2)
        v = smooth_vector_field(ops.grid, seed=10)
        assert reg.energy(2.0 * v) == pytest.approx(4.0 * reg.energy(v), rel=1e-10)


class TestInverse:
    def test_inverse_is_right_inverse_on_zero_mean_fields(self, ops):
        reg = H1Regularization(ops, 0.3)
        v = smooth_vector_field(ops.grid, seed=11)
        v -= v.mean(axis=(1, 2, 3), keepdims=True)
        recovered = reg.apply_inverse(reg.gradient(v))
        np.testing.assert_allclose(recovered, v, atol=1e-8)

    def test_inverse_identity_on_constant_mode(self, ops):
        reg = H1Regularization(ops, 0.3)
        v = ops.grid.zeros_vector() + 1.5
        np.testing.assert_allclose(reg.apply_inverse(v), v, atol=1e-10)

    def test_inverse_without_beta(self, ops):
        reg = H1Regularization(ops, 0.25)
        v = smooth_vector_field(ops.grid, seed=12)
        with_beta = reg.apply_inverse(v, include_beta=True)
        without = reg.apply_inverse(v, include_beta=False)
        # on non-constant modes the two differ exactly by the factor beta
        diff = with_beta - without / 0.25
        # constant modes are treated identically (identity), so remove them
        diff -= diff.mean(axis=(1, 2, 3), keepdims=True)
        assert ops.grid.norm(diff) < 1e-8

    def test_inverse_is_spd(self, ops):
        reg = H2Regularization(ops, 1e-2)
        grid = ops.grid
        a = smooth_vector_field(grid, seed=13)
        b = smooth_vector_field(grid, seed=14)
        assert grid.inner(reg.apply_inverse(a), b) == pytest.approx(
            grid.inner(a, reg.apply_inverse(b)), rel=1e-8
        )
        assert grid.inner(reg.apply_inverse(a), a) > 0.0
