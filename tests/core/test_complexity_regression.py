"""Regression tests pinning the paper's kernel complexity model (Sec. III-C4).

The paper counts ``8*nt`` 3D FFTs and ``4*nt`` interpolation sweeps per
Gauss-Newton Hessian matvec.

**FFTs.**  In this implementation one "paper FFT" is a forward/inverse pair,
and the exact per-matvec transform count for the Gauss-Newton,
non-incompressible path in the paper's *uncached* cost model
(``REPRO_GRADIENT_CACHE=0``) is

    transforms(nt) = 8*(nt + 1) + 6

(``4*(nt+1)`` for the incremental-state source gradients, ``4*(nt+1)`` for
the body-force integrand gradients — both trapezoid rules visit ``nt + 1``
time levels — plus ``6`` for the batched regularization matvec), i.e.
``4*nt + 7`` pairs, which sits inside the paper's ``8*nt`` budget for every
``nt >= 2``.

With the per-iterate gradient cache (:mod:`repro.core.gradients`, the
default), all ``8*(nt+1)`` state-gradient transforms amortize into the
``linearize`` call, so a **warm matvec performs zero spectral-gradient
FFTs** — only the regularizer's batched matvec remains:

    transforms_warm(nt) = 6                      (independent of nt)

**Interpolations.**  One "sweep" is an interpolation of all grid points at
the cached departure points.  The incremental state performs 2 sweeps per
time step (the transported field and its source move through one batched
gather); the incremental adjoint performs 2 for a general velocity (the
``div v`` source) and 1 when the velocity is divergence-free:

    sweeps(nt) = 4*nt          (general velocity; exactly the paper's count)
    sweeps(nt) = 3*nt          (divergence-free velocity)

The interpolation cost is identical cached and uncached — the cache only
touches spectral work.

These tests pin all three numbers exactly so any refactor of the spectral or
interpolation layers (backends, batching, plan caching) that changes the
amount of kernel work is caught immediately, and they assert the counts are
identical for every available FFT / interpolation backend — counting lives
in the frontends, never in the pluggable engines.
"""

import numpy as np
import pytest

from repro.core.gradients import set_gradient_cache_enabled
from repro.core.problem import RegistrationProblem
from repro.data.synthetic import synthetic_registration_problem
from repro.spectral.backends import available_backends as available_fft_backends
from repro.transport.kernels import available_backends as available_interp_backends


def warm_transforms_per_matvec() -> int:
    """Transform count of a warm cached Gauss-Newton matvec: regularizer only."""
    return 6


def exact_transforms_per_matvec(nt: int) -> int:
    """Analytic transform count of one *uncached* Gauss-Newton Hessian matvec."""
    return 8 * (nt + 1) + 6


def exact_interpolation_sweeps_per_matvec(nt: int, divergence_free: bool = False) -> int:
    """Analytic interpolation-sweep count of one Gauss-Newton Hessian matvec."""
    return 3 * nt if divergence_free else 4 * nt


def _build_problem(nt: int, fft_backend: str = "numpy", interp_backend: str = None):
    synthetic = synthetic_registration_problem(8, num_time_steps=nt)
    return RegistrationProblem(
        grid=synthetic.grid,
        reference=synthetic.reference,
        template=synthetic.template,
        num_time_steps=nt,
        fft_backend=fft_backend,
        interp_backend=interp_backend,
    )


def _generic_velocity(problem) -> np.ndarray:
    """A smooth velocity with ``div v != 0`` (exercises the source branch)."""
    x1, x2, x3 = problem.grid.coordinates()
    return 0.1 * np.stack(
        [np.sin(x1) * np.cos(x2), np.cos(x2) * np.sin(x3), np.sin(x3) * np.cos(x1)],
        axis=0,
    )


def _measure_matvec_work(
    nt: int,
    fft_backend: str = "numpy",
    interp_backend: str = None,
    gradient_cache: bool = True,
):
    set_gradient_cache_enabled(gradient_cache)
    problem = _build_problem(nt, fft_backend, interp_backend)
    velocity = _generic_velocity(problem)
    iterate = problem.linearize(velocity)
    assert not iterate.plan.is_divergence_free
    assert iterate.state_gradients.cached is gradient_cache
    direction = 0.1 * np.random.default_rng(0).standard_normal((3, *problem.grid.shape))
    before = problem.work_counters()
    problem.hessian_matvec(iterate, direction)
    delta = problem.work_counters() - before
    return delta.fft_transforms, delta.interpolation_sweeps(problem.grid.num_points)


class TestPaperComplexityModel:
    @pytest.mark.parametrize("nt", [2, 4])
    def test_exact_warm_transform_count(self, nt):
        """A warm cached matvec performs zero spectral-gradient FFTs."""
        transforms, _ = _measure_matvec_work(nt)
        assert transforms == warm_transforms_per_matvec()

    @pytest.mark.parametrize("nt", [2, 4])
    def test_exact_uncached_transform_count(self, nt):
        """The paper-mode pin: disabling the cache restores ``8(nt+1)+6``."""
        transforms, _ = _measure_matvec_work(nt, gradient_cache=False)
        assert transforms == exact_transforms_per_matvec(nt)

    @pytest.mark.parametrize("nt", [2, 4])
    def test_linearize_cost_is_cache_invariant(self, nt):
        """Building the cache costs exactly the gradients it replaces.

        ``linearize`` needs every state-gradient level for the body force
        anyway, so materializing the stack adds zero transforms — the cache
        is pure amortization, never a cold-path tax.
        """
        counts = {}
        for cached in (True, False):
            set_gradient_cache_enabled(cached)
            problem = _build_problem(nt)
            velocity = _generic_velocity(problem)
            before = problem.work_counters()
            problem.linearize(velocity)
            counts[cached] = (problem.work_counters() - before).fft_transforms
        assert counts[True] == counts[False]

    @pytest.mark.parametrize("nt", [2, 4, 8])
    def test_within_paper_budget(self, nt):
        """``4*nt + 7`` forward/inverse pairs fit the paper's ``8*nt`` FFTs."""
        pairs = exact_transforms_per_matvec(nt) / 2
        assert pairs <= 8 * nt
        assert warm_transforms_per_matvec() < exact_transforms_per_matvec(nt)

    @pytest.mark.parametrize("backend", available_fft_backends())
    @pytest.mark.parametrize("gradient_cache", [True, False])
    def test_count_is_backend_independent(self, backend, gradient_cache):
        nt = 4
        transforms, _ = _measure_matvec_work(
            nt, fft_backend=backend, gradient_cache=gradient_cache
        )
        expected = (
            warm_transforms_per_matvec()
            if gradient_cache
            else exact_transforms_per_matvec(nt)
        )
        assert transforms == expected


class TestInterpolationSweeps:
    """Pin the paper's ``4*nt`` interpolation sweeps per Hessian matvec."""

    @pytest.mark.parametrize("nt", [2, 4])
    @pytest.mark.parametrize("gradient_cache", [True, False])
    def test_exact_sweep_count_general_velocity(self, nt, gradient_cache):
        _, sweeps = _measure_matvec_work(nt, gradient_cache=gradient_cache)
        assert sweeps == exact_interpolation_sweeps_per_matvec(nt)

    @pytest.mark.parametrize("nt", [2, 4, 8])
    def test_within_paper_budget(self, nt):
        """The matvec never exceeds the paper's ``4*nt`` sweeps."""
        assert exact_interpolation_sweeps_per_matvec(nt) <= 4 * nt
        assert exact_interpolation_sweeps_per_matvec(nt, divergence_free=True) <= 4 * nt

    def test_divergence_free_velocity_saves_a_sweep_per_step(self):
        nt = 4
        problem = _build_problem(nt)
        iterate = problem.linearize(problem.zero_velocity())
        assert iterate.plan.is_divergence_free
        direction = 0.1 * np.random.default_rng(1).standard_normal(
            (3, *problem.grid.shape)
        )
        before = problem.work_counters()
        problem.hessian_matvec(iterate, direction)
        delta = problem.work_counters() - before
        sweeps = delta.interpolation_sweeps(problem.grid.num_points)
        assert sweeps == exact_interpolation_sweeps_per_matvec(nt, divergence_free=True)

    @pytest.mark.parametrize("backend", available_interp_backends())
    def test_count_is_backend_independent(self, backend):
        """Counter parity: every gather engine reports identical work."""
        nt = 4
        _, sweeps = _measure_matvec_work(nt, interp_backend=backend)
        assert sweeps == exact_interpolation_sweeps_per_matvec(nt)
