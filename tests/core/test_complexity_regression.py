"""Regression tests pinning the paper's FFT complexity model (Sec. III-C4).

The paper counts ``8*nt`` 3D FFTs per Gauss-Newton Hessian matvec.  In this
implementation one "paper FFT" is a forward/inverse pair, and the exact
per-matvec transform count for the Gauss-Newton, non-incompressible path is

    transforms(nt) = 8*(nt + 1) + 6

(``4*(nt+1)`` for the incremental-state source gradients, ``4*(nt+1)`` for
the body-force integrand gradients — both trapezoid rules visit ``nt + 1``
time levels — plus ``6`` for the batched regularization matvec), i.e.
``4*nt + 7`` pairs, which sits inside the paper's ``8*nt`` budget for every
``nt >= 2``.  These tests pin that number exactly so any refactor of the
spectral layer (backends, batching, symbol caching) that changes the amount
of FFT work is caught immediately, and they assert the count is identical
for every available FFT backend.
"""

import numpy as np
import pytest

from repro.core.problem import RegistrationProblem
from repro.data.synthetic import synthetic_registration_problem
from repro.spectral.backends import available_backends


def exact_transforms_per_matvec(nt: int) -> int:
    """Analytic transform count of one Gauss-Newton Hessian matvec."""
    return 8 * (nt + 1) + 6


def _measure_matvec_transforms(nt: int, backend: str) -> int:
    synthetic = synthetic_registration_problem(8, num_time_steps=nt)
    problem = RegistrationProblem(
        grid=synthetic.grid,
        reference=synthetic.reference,
        template=synthetic.template,
        num_time_steps=nt,
        fft_backend=backend,
    )
    iterate = problem.linearize(problem.zero_velocity())
    direction = 0.1 * np.random.default_rng(0).standard_normal((3, *problem.grid.shape))
    before = problem.work_counters().fft_transforms
    problem.hessian_matvec(iterate, direction)
    return problem.work_counters().fft_transforms - before


class TestPaperComplexityModel:
    @pytest.mark.parametrize("nt", [2, 4])
    def test_exact_transform_count(self, nt):
        assert _measure_matvec_transforms(nt, "numpy") == exact_transforms_per_matvec(nt)

    @pytest.mark.parametrize("nt", [2, 4, 8])
    def test_within_paper_budget(self, nt):
        """``4*nt + 7`` forward/inverse pairs fit the paper's ``8*nt`` FFTs."""
        pairs = exact_transforms_per_matvec(nt) / 2
        assert pairs <= 8 * nt

    @pytest.mark.parametrize("backend", available_backends())
    def test_count_is_backend_independent(self, backend):
        nt = 4
        assert _measure_matvec_transforms(nt, backend) == exact_transforms_per_matvec(nt)
