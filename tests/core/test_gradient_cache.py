"""The per-iterate gradient cache (:mod:`repro.core.gradients`).

Covers the tentpole guarantees of the cache layer:

* **bitwise identity** — cached and uncached solves produce bit-identical
  gradients and Hessian mat-vecs on every FFT/interpolation backend, every
  plan layout, and both Hessian variants (Gauss-Newton and full Newton);
  the cache reuses the FFT outputs, it never changes them;
* **budget participation** — the cached stack lives in the shared plan
  pool under the ``grad-cache`` tag, is byte-accounted exactly, and
  degrades to the lazy per-level path (with a logged decision) whenever
  the ``REPRO_PLAN_POOL_BYTES`` budget cannot hold it;
* **counter exactness** — a warm Gauss-Newton mat-vec performs zero
  spectral-gradient FFTs (6 transforms total, the regularizer), full
  Newton drops from ``16(nt+1)+6`` to ``8(nt+1)+6``, and building the
  cache adds zero transforms to ``linearize``;
* the batched time-axis operators (``gradient_many``/``divergence_many``)
  count exactly like their per-level loops.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gradients import (
    GRADIENT_CACHE_ENV_VAR,
    CachedStateGradients,
    LazyStateGradients,
    accumulate_weighted_products,
    env_gradient_cache_enabled,
    gradient_cache_decision_log,
    gradient_cache_enabled,
    plan_state_gradients,
    projected_gradient_cache_nbytes,
    set_gradient_cache_enabled,
    trapezoid_weights,
)
from repro.core.problem import RegistrationProblem
from repro.data.synthetic import synthetic_registration_problem
from repro.observability.metrics import get_metrics_registry
from repro.runtime.plan_pool import configure_plan_pool, get_plan_pool, reset_plan_pool
from repro.spectral.backends import available_backends as available_fft_backends
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.transport.kernels import (
    PLAN_LAYOUT_CHOICES,
    available_backends as available_interp_backends,
    set_default_plan_layout,
)

from tests.fixtures import make_grid, smooth_scalar_field, smooth_velocity_field


@pytest.fixture(autouse=True)
def _restore_pool_budget():
    """Re-read the environment budget after every test.

    The shared conftest hygiene deliberately preserves the pool budget
    across tests (the pressure CI leg sets it via the environment); the
    budget-fallback tests below shrink it, so they must put it back.
    """
    yield
    configure_plan_pool(None)


@pytest.fixture()
def grid() -> Grid:
    return make_grid(8)


@pytest.fixture()
def ops(grid) -> SpectralOperators:
    return SpectralOperators(grid)


@pytest.fixture()
def state_history(grid) -> np.ndarray:
    return np.stack([smooth_scalar_field(grid, seed=10 + j) for j in range(5)])


def _problem(nt=4, fft_backend="numpy", interp_backend=None, gauss_newton=True):
    synthetic = synthetic_registration_problem(8, num_time_steps=nt)
    return RegistrationProblem(
        grid=synthetic.grid,
        reference=synthetic.reference,
        template=synthetic.template,
        num_time_steps=nt,
        gauss_newton=gauss_newton,
        fft_backend=fft_backend,
        interp_backend=interp_backend,
    )


# --------------------------------------------------------------------------- #
# policy knob
# --------------------------------------------------------------------------- #
class TestPolicyKnob:
    def test_default_is_enabled(self):
        assert gradient_cache_enabled() is True

    def test_process_override_wins(self):
        set_gradient_cache_enabled(False)
        assert gradient_cache_enabled() is False
        set_gradient_cache_enabled(None)
        assert gradient_cache_enabled() is True

    @pytest.mark.parametrize("raw,expected", [("1", True), ("true", True), ("on", True), ("0", False), ("off", False), ("no", False)])
    def test_env_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv(GRADIENT_CACHE_ENV_VAR, raw)
        assert env_gradient_cache_enabled() is expected
        assert gradient_cache_enabled() is expected

    def test_env_unset_means_none(self, monkeypatch):
        monkeypatch.delenv(GRADIENT_CACHE_ENV_VAR, raising=False)
        assert env_gradient_cache_enabled() is None

    def test_env_malformed_raises_with_variable_name(self, monkeypatch):
        monkeypatch.setenv(GRADIENT_CACHE_ENV_VAR, "sometimes")
        with pytest.raises(ValueError, match=GRADIENT_CACHE_ENV_VAR):
            env_gradient_cache_enabled()

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(GRADIENT_CACHE_ENV_VAR, "0")
        set_gradient_cache_enabled(True)
        assert gradient_cache_enabled() is True


# --------------------------------------------------------------------------- #
# quadrature helpers
# --------------------------------------------------------------------------- #
class TestQuadratureHelpers:
    @pytest.mark.parametrize("nt", [1, 2, 4, 9])
    def test_trapezoid_weights(self, nt):
        weights = trapezoid_weights(nt)
        assert weights.shape == (nt + 1,)
        assert weights[0] == weights[-1] == 0.5 / nt
        np.testing.assert_allclose(weights.sum(), 1.0)

    def test_accumulation_matches_reference_loop_bitwise(self, ops, state_history):
        """The fused buffers reproduce the historical loop bit for bit."""
        grid = ops.grid
        nt = state_history.shape[0] - 1
        scalars = np.stack([smooth_scalar_field(grid, seed=30 + j) for j in range(nt + 1)])
        weights = trapezoid_weights(nt)

        reference = grid.zeros_vector()
        for j in range(nt + 1):
            reference += weights[j] * scalars[j][None] * ops.gradient(state_history[j])

        fused = accumulate_weighted_products(
            weights,
            [(scalars, LazyStateGradients(ops, state_history))],
            out=grid.zeros_vector(),
        )
        np.testing.assert_array_equal(fused, reference)

    def test_accumulation_validates_level_counts(self, ops, state_history):
        with pytest.raises(ValueError, match="time levels"):
            accumulate_weighted_products(
                trapezoid_weights(2),
                [(np.zeros((3, *ops.grid.shape)), LazyStateGradients(ops, state_history))],
            )
        with pytest.raises(ValueError, match="at least one"):
            accumulate_weighted_products(trapezoid_weights(2), [])


# --------------------------------------------------------------------------- #
# cache planning: budget, fallback, logging
# --------------------------------------------------------------------------- #
class TestCachePlanning:
    def test_cached_stack_matches_per_level_gradients_bitwise(self, ops, state_history):
        source = plan_state_gradients(ops, state_history)
        assert source.cached
        for j in range(state_history.shape[0]):
            np.testing.assert_array_equal(
                source.level(j), ops.gradient(state_history[j])
            )

    def test_stack_is_read_only(self, ops, state_history):
        source = plan_state_gradients(ops, state_history)
        with pytest.raises(ValueError):
            source.stack()[0] = 0.0

    def test_pool_accounting_under_grad_cache_tag(self, ops, state_history):
        plan_state_gradients(ops, state_history)
        stats = get_plan_pool().stats_by_tag()["grad-cache"]
        assert stats.misses == 1 and stats.entries == 1
        assert stats.current_bytes == projected_gradient_cache_nbytes(state_history)
        assert stats.current_bytes == 3 * state_history.nbytes

    def test_revisit_is_a_warm_pool_hit_with_zero_ffts(self, ops, state_history):
        plan_state_gradients(ops, state_history)
        before = ops.fft.counters.total
        source = plan_state_gradients(ops, state_history)
        assert ops.fft.counters.total == before
        assert source.cached
        assert get_plan_pool().stats_by_tag()["grad-cache"].hits == 1

    def test_budget_too_small_degrades_and_logs(self, ops, state_history):
        configure_plan_pool(projected_gradient_cache_nbytes(state_history) - 1)
        before = ops.fft.counters.total
        source = plan_state_gradients(ops, state_history)
        # the decision happens before building: no transforms were spent on
        # a stack that could never be stored
        assert ops.fft.counters.total == before
        assert not source.cached
        assert isinstance(source, LazyStateGradients)
        decision = gradient_cache_decision_log().recent()[-1]
        assert not decision.cached
        assert "exceeds the plan-pool budget" in decision.reason
        assert decision.projected_bytes == projected_gradient_cache_nbytes(state_history)

    def test_zero_budget_degrades(self, ops, state_history):
        configure_plan_pool(0)
        source = plan_state_gradients(ops, state_history)
        assert not source.cached
        assert "budget 0" in gradient_cache_decision_log().recent()[-1].reason

    def test_opt_out_degrades_and_logs(self, ops, state_history):
        set_gradient_cache_enabled(False)
        source = plan_state_gradients(ops, state_history)
        assert not source.cached
        assert "disabled" in gradient_cache_decision_log().recent()[-1].reason

    def test_decision_counts_and_metrics_collector(self, ops, state_history):
        plan_state_gradients(ops, state_history)
        set_gradient_cache_enabled(False)
        plan_state_gradients(ops, state_history)
        log = gradient_cache_decision_log()
        assert log.counts() == {"cached": 1, "uncached": 1}
        assert log.total == 2
        snapshot = get_metrics_registry().collect()
        assert snapshot["gradient_cache.decisions"] == {
            "mode=cached": 1,
            "mode=uncached": 1,
        }

    def test_lazy_source_recomputes_per_level(self, ops, state_history):
        source = LazyStateGradients(ops, state_history)
        before = ops.fft.counters.total
        level = source.level(2)
        assert ops.fft.counters.total - before == 4  # 1 forward + 3 inverse
        np.testing.assert_array_equal(level, ops.gradient(state_history[2]))


# --------------------------------------------------------------------------- #
# batched time-axis operators
# --------------------------------------------------------------------------- #
class TestBatchedOperators:
    def test_gradient_many_matches_per_level(self, ops, state_history):
        batched = ops.gradient_many(state_history)
        assert batched.shape == (state_history.shape[0], 3, *ops.grid.shape)
        for j in range(state_history.shape[0]):
            np.testing.assert_allclose(
                batched[j], ops.gradient(state_history[j]), atol=1e-12
            )

    def test_gradient_many_counter_parity(self, ops, state_history):
        levels = state_history.shape[0]
        before = ops.fft.counters.total
        ops.gradient_many(state_history)
        assert ops.fft.counters.total - before == 4 * levels

    def test_divergence_many_matches_per_level(self, ops, grid):
        stack = np.stack([smooth_velocity_field(grid, seed=40 + j) for j in range(4)])
        batched = ops.divergence_many(stack)
        assert batched.shape == (4, *grid.shape)
        for j in range(4):
            np.testing.assert_allclose(batched[j], ops.divergence(stack[j]), atol=1e-12)

    def test_divergence_many_counter_parity(self, ops, grid):
        stack = np.stack([smooth_velocity_field(grid, seed=50 + j) for j in range(3)])
        before = ops.fft.counters.total
        ops.divergence_many(stack)
        assert ops.fft.counters.total - before == 4 * 3

    def test_shape_validation(self, ops, grid):
        with pytest.raises(ValueError, match="field stack"):
            ops.gradient_many(np.zeros(grid.shape))
        with pytest.raises(ValueError, match="vector stack"):
            ops.divergence_many(np.zeros((2, *grid.shape)))


# --------------------------------------------------------------------------- #
# solver integration: counters and identity
# --------------------------------------------------------------------------- #
def _solve_one_matvec(gauss_newton, cached, fft_backend="numpy", interp_backend=None):
    """One linearize + two mat-vecs; returns (gradient, matvec, warm fft delta)."""
    set_gradient_cache_enabled(cached)
    reset_plan_pool()
    problem = _problem(
        fft_backend=fft_backend, interp_backend=interp_backend, gauss_newton=gauss_newton
    )
    velocity = 0.2 * smooth_velocity_field(problem.grid, seed=60)
    direction = 0.1 * smooth_velocity_field(problem.grid, seed=61)
    iterate = problem.linearize(velocity)
    problem.hessian_matvec(iterate, direction)  # warm the iterate
    before = problem.work_counters()
    matvec = problem.hessian_matvec(iterate, direction)
    delta = problem.work_counters() - before
    return iterate.gradient, matvec, delta


class TestSolverCounters:
    def test_warm_gauss_newton_matvec_has_zero_gradient_ffts(self):
        _, _, delta = _solve_one_matvec(gauss_newton=True, cached=True)
        assert delta.fft_transforms == 6  # regularizer only

    def test_uncached_gauss_newton_matvec_restores_paper_count(self):
        nt = 4
        _, _, delta = _solve_one_matvec(gauss_newton=True, cached=False)
        assert delta.fft_transforms == 8 * (nt + 1) + 6

    def test_full_newton_matvec_counts(self):
        nt = 4
        _, _, warm = _solve_one_matvec(gauss_newton=False, cached=True)
        _, _, cold = _solve_one_matvec(gauss_newton=False, cached=False)
        # the state gradients amortize; the rho~ gradients cannot (rho~
        # depends on the direction) and cost 4*(nt+1) per mat-vec
        assert warm.fft_transforms == 8 * (nt + 1) + 6
        assert cold.fft_transforms == 16 * (nt + 1) + 6

    def test_interpolation_work_is_cache_invariant(self):
        _, _, warm = _solve_one_matvec(gauss_newton=True, cached=True)
        _, _, cold = _solve_one_matvec(gauss_newton=True, cached=False)
        assert warm.interpolated_points == cold.interpolated_points


class TestBitwiseIdentity:
    """Cached and uncached solves are bit-identical — the acceptance pin."""

    @pytest.mark.parametrize("gauss_newton", [True, False])
    def test_gradient_and_matvec_identity(self, gauss_newton):
        g_cached, mv_cached, _ = _solve_one_matvec(gauss_newton, cached=True)
        g_lazy, mv_lazy, _ = _solve_one_matvec(gauss_newton, cached=False)
        np.testing.assert_array_equal(g_cached, g_lazy)
        np.testing.assert_array_equal(mv_cached, mv_lazy)

    @settings(max_examples=8, deadline=None)
    @given(
        fft_backend=st.sampled_from(available_fft_backends()),
        interp_backend=st.sampled_from(available_interp_backends()),
        plan_layout=st.sampled_from(sorted(PLAN_LAYOUT_CHOICES)),
        gauss_newton=st.booleans(),
    )
    def test_identity_across_backends_and_layouts(
        self, fft_backend, interp_backend, plan_layout, gauss_newton
    ):
        """Hypothesis sweep: backends x layouts x Hessian variants."""
        set_default_plan_layout(plan_layout)
        try:
            g_cached, mv_cached, warm = _solve_one_matvec(
                gauss_newton, True, fft_backend, interp_backend
            )
            g_lazy, mv_lazy, cold = _solve_one_matvec(
                gauss_newton, False, fft_backend, interp_backend
            )
        finally:
            set_default_plan_layout(None)
            set_gradient_cache_enabled(None)
        np.testing.assert_array_equal(g_cached, g_lazy)
        np.testing.assert_array_equal(mv_cached, mv_lazy)
        # counter parity across engines, warm strictly cheaper than cold
        nt = 4
        expected_cold = (16 if not gauss_newton else 8) * (nt + 1) + 6
        expected_warm = expected_cold - 8 * (nt + 1)
        assert cold.fft_transforms == expected_cold
        assert warm.fft_transforms == expected_warm

    def test_full_solve_velocity_identity(self):
        """End to end: the optimized velocity is bit-identical either way."""
        from repro.core.optim.gauss_newton import GaussNewtonKrylov, SolverOptions

        results = {}
        for cached in (True, False):
            set_gradient_cache_enabled(cached)
            reset_plan_pool()
            problem = _problem()
            solver = GaussNewtonKrylov(
                problem, SolverOptions(max_newton_iterations=2, verbose=False)
            )
            results[cached] = solver.solve().velocity
        np.testing.assert_array_equal(results[True], results[False])


class TestIterateWiring:
    def test_linearize_attaches_cached_source(self):
        problem = _problem()
        iterate = problem.linearize(0.1 * smooth_velocity_field(problem.grid, seed=70))
        assert iterate.state_gradients is not None
        assert iterate.state_gradients.cached

    def test_linearize_attaches_lazy_source_when_disabled(self):
        set_gradient_cache_enabled(False)
        problem = _problem()
        iterate = problem.linearize(0.1 * smooth_velocity_field(problem.grid, seed=70))
        assert iterate.state_gradients is not None
        assert not iterate.state_gradients.cached

    def test_hand_built_iterate_without_source_still_works(self):
        """Consumers degrade to the lazy path when no source was attached."""
        problem = _problem()
        iterate = problem.linearize(0.1 * smooth_velocity_field(problem.grid, seed=71))
        direction = 0.1 * smooth_velocity_field(problem.grid, seed=72)
        expected = problem.hessian_matvec(iterate, direction)
        stripped = iterate.__class__(
            **{**vars(iterate), "state_gradients": None}
        )
        np.testing.assert_array_equal(
            problem.hessian_matvec(stripped, direction), expected
        )

    def test_cached_stack_shape_validation(self):
        with pytest.raises(ValueError, match="gradient stack"):
            CachedStateGradients(np.zeros((4, 2, 8, 8, 8)))
