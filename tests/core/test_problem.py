"""Tests for repro.core.problem: objective, reduced gradient, Hessian mat-vec.

The central correctness checks of the whole solver live here:

* the adjoint-based reduced gradient is validated against directional
  finite differences of the objective,
* the Gauss-Newton Hessian is validated for symmetry and positive
  semi-definiteness (which PCG requires),
* the paper's kernel-count complexity model (8 nt FFTs / 4 nt interpolation
  sweeps per mat-vec) is checked against the implementation.
"""

import numpy as np
import pytest

from repro.core.gradients import set_gradient_cache_enabled
from repro.core.problem import RegistrationProblem
from repro.data.synthetic import synthetic_registration_problem

from tests.fixtures import smooth_vector_field


@pytest.fixture(scope="module")
def synthetic12():
    return synthetic_registration_problem(12, num_time_steps=4)


@pytest.fixture(scope="module")
def problem12(synthetic12):
    return RegistrationProblem(
        grid=synthetic12.grid,
        reference=synthetic12.reference,
        template=synthetic12.template,
        beta=1e-2,
        num_time_steps=4,
    )


class TestConstruction:
    def test_image_shape_validation(self, synthetic12):
        with pytest.raises(ValueError):
            RegistrationProblem(
                grid=synthetic12.grid,
                reference=synthetic12.reference[:-1],
                template=synthetic12.template,
            )
        with pytest.raises(ValueError):
            RegistrationProblem(
                grid=synthetic12.grid,
                reference=synthetic12.reference,
                template=np.zeros((4, 4, 4)),
            )

    def test_summary_contents(self, problem12):
        summary = problem12.summary()
        assert summary["grid"] == (12, 12, 12)
        assert summary["num_unknowns_velocity"] == 3 * 12**3
        assert summary["gauss_newton"] is True
        # the layout policy is surfaced: the setting and its resolution for
        # this grid (12^3 under the default budget resolves to lean)
        assert summary["plan_layout"] in ("auto", "lean", "fat", "streaming")
        assert summary["plan_layout_resolved"] in ("lean", "fat", "streaming")

    def test_objective_matches_linearize_objective(self, problem12):
        """evaluate_objective (history-free) == linearize's objective parts."""
        velocity = 0.3 * smooth_vector_field(problem12.grid, seed=2)
        objective = problem12.evaluate_objective(velocity)
        iterate = problem12.linearize(velocity)
        assert objective.distance == iterate.objective.distance
        assert objective.regularization == iterate.objective.regularization

    def test_set_beta_updates_regularizer(self, problem12):
        problem12.set_beta(1e-3)
        assert problem12.regularizer.beta == pytest.approx(1e-3)
        problem12.set_beta(1e-2)

    def test_zero_velocity_shape(self, problem12):
        assert problem12.zero_velocity().shape == (3, 12, 12, 12)


class TestObjective:
    def test_objective_at_zero_velocity_is_initial_mismatch(self, problem12):
        parts = problem12.evaluate_objective(problem12.zero_velocity())
        diff = problem12.template - problem12.reference
        expected = 0.5 * problem12.grid.inner(diff, diff)
        assert parts.distance == pytest.approx(expected, rel=1e-10)
        assert parts.regularization == 0.0
        assert parts.total == pytest.approx(expected, rel=1e-10)

    def test_objective_decreases_along_true_velocity(self, synthetic12, problem12):
        at_zero = problem12.evaluate_objective(problem12.zero_velocity()).total
        at_truth = problem12.evaluate_objective(synthetic12.true_velocity).total
        assert at_truth < at_zero

    def test_distance_is_nonnegative(self, problem12, rng):
        v = 0.2 * smooth_vector_field(problem12.grid, seed=1)
        parts = problem12.evaluate_objective(v)
        assert parts.distance >= 0.0
        assert parts.regularization >= 0.0


class TestGradient:
    def test_gradient_shape_and_linearize_contents(self, problem12):
        iterate = problem12.linearize(problem12.zero_velocity())
        assert iterate.gradient.shape == (3, 12, 12, 12)
        assert iterate.state_history.shape == (5, 12, 12, 12)
        assert iterate.adjoint_history.shape == (5, 12, 12, 12)
        assert iterate.gradient_norm > 0.0
        np.testing.assert_allclose(
            iterate.residual, problem12.reference - iterate.deformed_template, atol=1e-12
        )

    def test_gradient_at_zero_velocity_analytic(self, problem12):
        # at v = 0: rho(t) = rho_T, lam(t) = rho_R - rho_T, so
        # g = int lam grad rho dt = (rho_R - rho_T) grad rho_T
        iterate = problem12.linearize(problem12.zero_velocity())
        ops = problem12.operators
        expected = (problem12.reference - problem12.template)[None] * ops.gradient(
            problem12.template
        )
        np.testing.assert_allclose(iterate.gradient, expected, atol=1e-10)

    @pytest.mark.parametrize("incompressible", [False, True])
    def test_gradient_matches_finite_differences(self, synthetic12, incompressible):
        """Directional derivative along the gradient itself (no cancellation)."""
        problem = RegistrationProblem(
            grid=synthetic12.grid,
            reference=synthetic12.reference,
            template=synthetic12.template,
            beta=1e-2,
            num_time_steps=4,
            incompressible=incompressible,
        )
        grid = problem.grid
        v = problem.project(0.3 * smooth_vector_field(grid, seed=2))
        iterate = problem.linearize(v)
        direction = iterate.gradient
        directional = grid.inner(iterate.gradient, direction)

        eps = 1e-4
        plus = problem.evaluate_objective(v + eps * direction).total
        minus = problem.evaluate_objective(v - eps * direction).total
        fd = (plus - minus) / (2 * eps)
        assert directional == pytest.approx(fd, rel=5e-2)

    def test_gradient_matches_finite_differences_random_direction(self, problem12):
        """Random direction: error normalized by |g| |d| (optimize-then-discretize
        leaves an O(h^2, dt^2) consistency gap, so the raw relative error is not
        the right yardstick when the directional derivative nearly cancels)."""
        grid = problem12.grid
        v = 0.3 * smooth_vector_field(grid, seed=2)
        direction = 0.3 * smooth_vector_field(grid, seed=3)
        iterate = problem12.linearize(v)
        directional = grid.inner(iterate.gradient, direction)
        eps = 1e-4
        plus = problem12.evaluate_objective(v + eps * direction).total
        minus = problem12.evaluate_objective(v - eps * direction).total
        fd = (plus - minus) / (2 * eps)
        scale = grid.norm(iterate.gradient) * grid.norm(direction)
        assert abs(directional - fd) / scale < 5e-3

    def test_incompressible_gradient_is_divergence_free(self, synthetic12):
        problem = RegistrationProblem(
            grid=synthetic12.grid,
            reference=synthetic12.reference,
            template=synthetic12.template,
            incompressible=True,
        )
        v = problem.project(0.3 * smooth_vector_field(problem.grid, seed=4))
        iterate = problem.linearize(v)
        assert problem.operators.is_divergence_free(iterate.gradient, tol=1e-8)

    def test_gradient_is_descent_direction(self, problem12):
        v = 0.2 * smooth_vector_field(problem12.grid, seed=5)
        iterate = problem12.linearize(v)
        eps = 1e-3
        step = -eps * iterate.gradient / max(iterate.gradient_norm, 1e-30)
        ahead = problem12.evaluate_objective(v + step).total
        assert ahead < iterate.objective.total


class TestHessian:
    def test_matvec_shape_and_counter(self, problem12):
        before = problem12.hessian_matvec_count
        iterate = problem12.linearize(problem12.zero_velocity())
        direction = 0.1 * smooth_vector_field(problem12.grid, seed=6)
        hv = problem12.hessian_matvec(iterate, direction)
        assert hv.shape == direction.shape
        assert problem12.hessian_matvec_count == before + 1

    def test_gauss_newton_hessian_is_symmetric(self, problem12):
        """Asymmetry normalized by ||H a|| ||b|| (the raw inner products nearly
        cancel for generic directions, so a plain relative comparison would
        only measure that cancellation)."""
        grid = problem12.grid
        iterate = problem12.linearize(0.2 * smooth_vector_field(grid, seed=7))
        a = 0.1 * smooth_vector_field(grid, seed=8)
        b = 0.1 * smooth_vector_field(grid, seed=9)
        ha = problem12.hessian_matvec(iterate, a)
        hb = problem12.hessian_matvec(iterate, b)
        lhs = grid.inner(ha, b)
        rhs = grid.inner(a, hb)
        scale = grid.norm(ha) * grid.norm(b)
        assert abs(lhs - rhs) / scale < 1e-3

    def test_gauss_newton_hessian_is_positive(self, problem12):
        grid = problem12.grid
        iterate = problem12.linearize(0.2 * smooth_vector_field(grid, seed=10))
        for seed in (11, 12, 13):
            d = 0.1 * smooth_vector_field(grid, seed=seed)
            assert grid.inner(problem12.hessian_matvec(iterate, d), d) > 0.0

    def test_hessian_linearity(self, problem12):
        grid = problem12.grid
        iterate = problem12.linearize(0.2 * smooth_vector_field(grid, seed=14))
        a = 0.1 * smooth_vector_field(grid, seed=15)
        b = 0.1 * smooth_vector_field(grid, seed=16)
        lhs = problem12.hessian_matvec(iterate, a + 2.0 * b)
        rhs = problem12.hessian_matvec(iterate, a) + 2.0 * problem12.hessian_matvec(iterate, b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-7)

    def test_hessian_matches_gradient_difference(self, synthetic12):
        # H(v) d ~ (g(v + eps d) - g(v - eps d)) / (2 eps) in the Gauss-Newton
        # sense: exact for the regularization part, approximate for the data
        # part; we check the full Newton Hessian against the FD of the gradient.
        problem = RegistrationProblem(
            grid=synthetic12.grid,
            reference=synthetic12.reference,
            template=synthetic12.template,
            beta=1e-1,
            gauss_newton=False,
        )
        grid = problem.grid
        v = 0.2 * smooth_vector_field(grid, seed=17)
        d = 0.2 * smooth_vector_field(grid, seed=18)
        iterate = problem.linearize(v)
        hv = problem.hessian_matvec(iterate, d)
        eps = 1e-3
        gp = problem.linearize(v + eps * d).gradient
        gm = problem.linearize(v - eps * d).gradient
        fd = (gp - gm) / (2 * eps)
        rel = grid.norm(hv - fd) / max(grid.norm(fd), 1e-30)
        assert rel < 0.15

    def test_regularization_dominates_for_large_beta(self, problem12):
        grid = problem12.grid
        problem12.set_beta(1e3)
        try:
            iterate = problem12.linearize(0.1 * smooth_vector_field(grid, seed=19))
            d = 0.1 * smooth_vector_field(grid, seed=20)
            hv = problem12.hessian_matvec(iterate, d)
            reg_part = problem12.regularizer.hessian_matvec(d)
            rel = grid.norm(hv - reg_part) / grid.norm(reg_part)
            assert rel < 1e-2
        finally:
            problem12.set_beta(1e-2)

    def test_incompressible_matvec_stays_divergence_free(self, synthetic12):
        problem = RegistrationProblem(
            grid=synthetic12.grid,
            reference=synthetic12.reference,
            template=synthetic12.template,
            incompressible=True,
        )
        iterate = problem.linearize(problem.zero_velocity())
        d = problem.project(0.1 * smooth_vector_field(problem.grid, seed=21))
        hv = problem.hessian_matvec(iterate, d)
        assert problem.operators.is_divergence_free(hv, tol=1e-7)


class TestComplexityCounts:
    def test_hessian_matvec_fft_and_interpolation_counts(self):
        """Check the paper's Sec. III-C4 work estimate: ~8 nt FFTs, 4 nt interp sweeps."""
        synthetic = synthetic_registration_problem(8, num_time_steps=4)
        problem = RegistrationProblem(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
            num_time_steps=4,
        )
        iterate = problem.linearize(problem.zero_velocity())
        direction = 0.1 * smooth_vector_field(problem.grid, seed=22)

        before = problem.work_counters()
        problem.hessian_matvec(iterate, direction)
        delta = problem.work_counters() - before

        nt = problem.num_time_steps
        n_points = problem.grid.num_points
        # interpolation sweeps: incremental state (2 per step: value + source) and
        # incremental adjoint (1 per step for div-free-less GN without source,
        # up to 2 with sources) -> between 3*nt and 5*nt grid sweeps.
        sweeps = delta.interpolated_points / n_points
        assert 2 * nt <= sweeps <= 6 * nt
        # FFT work: with the per-iterate gradient cache (the default) every
        # state-gradient transform amortized into linearize, so the warm
        # matvec only performs the regularizer's batched matvec (3 pairs);
        # the uncached path below restores the paper's ~8 nt budget.
        fft_pairs = delta.fft_transforms / 2
        assert fft_pairs == 3

        set_gradient_cache_enabled(False)
        try:
            uncached_iterate = problem.linearize(problem.zero_velocity())
            before = problem.work_counters()
            problem.hessian_matvec(uncached_iterate, direction)
            delta = problem.work_counters() - before
        finally:
            set_gradient_cache_enabled(None)
        fft_pairs = delta.fft_transforms / 2
        assert 2 * nt <= fft_pairs <= 10 * nt
