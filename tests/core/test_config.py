"""Tests of the consolidated :class:`repro.config.RegistrationConfig`."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.config import RegistrationConfig
from repro.core import registration as registration_module
from repro.core.registration import RegistrationSolver, register
from repro.data.synthetic import synthetic_registration_problem
from repro.runtime.layout import auto_streaming_fraction
from repro.runtime.plan_pool import configure_plan_pool, get_plan_pool
from repro.runtime.workers import resolve_workers
from repro.transport.kernels import default_plan_layout, set_default_plan_layout
from repro.transport.sources import (
    FIELD_SOURCE_ENV_VAR,
    default_field_source,
    set_default_field_source,
)


@pytest.fixture()
def tiny_problem():
    return synthetic_registration_problem(8)


@pytest.fixture()
def fast_options():
    from repro.core.optim.gauss_newton import SolverOptions

    return SolverOptions(max_newton_iterations=1, max_krylov_iterations=3)


class TestConstruction:
    def test_default_config_is_all_none(self):
        config = RegistrationConfig()
        assert all(value is None for value in config.as_dict().values())

    def test_validation_of_bad_fields(self):
        with pytest.raises(ValueError, match="workers"):
            RegistrationConfig(workers=0)
        with pytest.raises(ValueError, match="plan_pool_bytes"):
            RegistrationConfig(plan_pool_bytes=-1)
        with pytest.raises(ValueError, match="auto_fraction"):
            RegistrationConfig(auto_fraction=1.5)
        with pytest.raises(ValueError, match="auto_fraction"):
            RegistrationConfig(auto_fraction=0.0)

    def test_replace_derives_a_variant(self):
        base = RegistrationConfig(fft_backend="numpy")
        derived = base.replace(workers=2)
        assert derived.fft_backend == "numpy"
        assert derived.workers == 2
        assert base.workers is None  # frozen: the base is untouched

    def test_from_env_snapshots_concrete_values(self):
        config = RegistrationConfig.from_env()
        assert config.fft_backend is not None
        assert config.interp_backend is not None
        assert config.plan_layout in ("auto", "lean", "fat", "streaming")
        assert config.workers >= 1
        assert config.plan_pool_bytes == get_plan_pool().max_bytes
        assert 0.0 < config.auto_fraction <= 1.0
        assert config.field_source in ("resident", "memmap")

    def test_from_env_snapshots_the_field_source_mode(self, monkeypatch):
        monkeypatch.setenv(FIELD_SOURCE_ENV_VAR, "memmap")
        assert RegistrationConfig.from_env().field_source == "memmap"


class TestValidateAndApply:
    def test_validate_rejects_unknown_backend(self):
        with pytest.raises((ValueError, KeyError)):
            RegistrationConfig(fft_backend="no-such-engine").validate()

    def test_validate_rejects_unknown_layout(self):
        with pytest.raises(ValueError, match="layout"):
            RegistrationConfig(plan_layout="no-such-layout").validate()

    def test_validate_rejects_unknown_field_source(self):
        with pytest.raises(ValueError, match="field-source"):
            RegistrationConfig(field_source="floppy").validate()

    def test_validate_surfaces_malformed_env(self, monkeypatch):
        from repro.runtime.plan_pool import POOL_BYTES_ENV_VAR

        monkeypatch.setenv(POOL_BYTES_ENV_VAR, "lots")
        with pytest.raises(ValueError, match=POOL_BYTES_ENV_VAR):
            RegistrationConfig().validate()

    def test_validate_surfaces_malformed_field_source_env(self, monkeypatch):
        monkeypatch.setenv(FIELD_SOURCE_ENV_VAR, "floppy")
        with pytest.raises(ValueError, match=FIELD_SOURCE_ENV_VAR):
            RegistrationConfig().validate()

    def test_apply_sets_the_field_source_mode(self):
        try:
            RegistrationConfig(field_source="memmap").apply()
            assert default_field_source() == "memmap"
        finally:
            set_default_field_source(None)

    def test_apply_leaves_field_source_untouched_when_unset(self):
        set_default_field_source("memmap")
        try:
            RegistrationConfig(auto_fraction=0.25).apply()
            assert default_field_source() == "memmap"
        finally:
            set_default_field_source(None)

    def test_apply_pushes_only_set_fields(self):
        budget_before = get_plan_pool().max_bytes
        layout_before = default_plan_layout()
        RegistrationConfig(auto_fraction=0.25).apply()
        assert auto_streaming_fraction() == 0.25
        # unset fields leave the other process-wide knobs untouched
        assert get_plan_pool().max_bytes == budget_before
        assert default_plan_layout() == layout_before

    def test_apply_sets_layout_workers_and_budget(self):
        try:
            RegistrationConfig(
                plan_layout="streaming", workers=3, plan_pool_bytes=123456
            ).apply()
            assert default_plan_layout() == "streaming"
            assert resolve_workers("interp") == 3
            assert get_plan_pool().max_bytes == 123456
        finally:
            set_default_plan_layout(None)
            configure_plan_pool(None)

    def test_apply_returns_self_for_chaining(self):
        config = RegistrationConfig()
        assert config.apply() is config


class TestServiceEnvVars:
    def test_env_service_journal_round_trip(self, monkeypatch):
        from repro.config import SERVICE_JOURNAL_ENV_VAR, env_service_journal

        monkeypatch.delenv(SERVICE_JOURNAL_ENV_VAR, raising=False)
        assert env_service_journal() is None
        monkeypatch.setenv(SERVICE_JOURNAL_ENV_VAR, "/tmp/some-journal")
        assert str(env_service_journal()) == "/tmp/some-journal"

    def test_env_http_port_parses_and_validates(self, monkeypatch):
        from repro.config import HTTP_PORT_ENV_VAR, env_http_port

        monkeypatch.delenv(HTTP_PORT_ENV_VAR, raising=False)
        assert env_http_port() is None
        monkeypatch.setenv(HTTP_PORT_ENV_VAR, "8787")
        assert env_http_port() == 8787
        for bad in ("eighty", "-1", "70000"):
            monkeypatch.setenv(HTTP_PORT_ENV_VAR, bad)
            with pytest.raises(ValueError, match=HTTP_PORT_ENV_VAR):
                env_http_port()

    def test_env_class_weights_parses_and_validates(self, monkeypatch):
        from repro.config import (
            SERVICE_CLASS_WEIGHTS_ENV_VAR,
            env_service_class_weights,
        )

        monkeypatch.delenv(SERVICE_CLASS_WEIGHTS_ENV_VAR, raising=False)
        assert env_service_class_weights() == {}
        monkeypatch.setenv(
            SERVICE_CLASS_WEIGHTS_ENV_VAR, "interactive=4, atlas-burst=0.5"
        )
        assert env_service_class_weights() == {"interactive": 4.0, "atlas-burst": 0.5}
        for bad in ("interactive", "interactive=fast", "interactive=0", "=2"):
            monkeypatch.setenv(SERVICE_CLASS_WEIGHTS_ENV_VAR, bad)
            with pytest.raises(ValueError, match=SERVICE_CLASS_WEIGHTS_ENV_VAR):
                env_service_class_weights()

    def test_validate_surfaces_malformed_service_env(self, monkeypatch):
        from repro.config import HTTP_PORT_ENV_VAR, SERVICE_CLASS_WEIGHTS_ENV_VAR

        monkeypatch.setenv(HTTP_PORT_ENV_VAR, "not-a-port")
        with pytest.raises(ValueError, match=HTTP_PORT_ENV_VAR):
            RegistrationConfig().validate()
        monkeypatch.delenv(HTTP_PORT_ENV_VAR)
        monkeypatch.setenv(SERVICE_CLASS_WEIGHTS_ENV_VAR, "interactive=-3")
        with pytest.raises(ValueError, match=SERVICE_CLASS_WEIGHTS_ENV_VAR):
            RegistrationConfig().validate()


class TestSolverIntegration:
    def test_solver_takes_backends_from_config(self, tiny_problem, fast_options):
        solver = RegistrationSolver(
            options=fast_options,
            config=RegistrationConfig(fft_backend="numpy", interp_backend="scipy"),
        )
        result = solver.run(tiny_problem.template, tiny_problem.reference)
        assert result.summary()["fft_backend"] == "numpy"
        assert result.summary()["interp_backend"] == "scipy"

    def test_explicit_backend_beats_config(self, tiny_problem, fast_options):
        solver = RegistrationSolver(
            options=fast_options,
            fft_backend="scipy",
            config=RegistrationConfig(fft_backend="numpy"),
        )
        result = solver.run(tiny_problem.template, tiny_problem.reference)
        assert result.summary()["fft_backend"] == "scipy"

    def test_register_accepts_config(self, tiny_problem, fast_options):
        result = register(
            tiny_problem.template,
            tiny_problem.reference,
            options=fast_options,
            config=RegistrationConfig(fft_backend="numpy"),
        )
        assert result.summary()["fft_backend"] == "numpy"


class TestLegacyKwargShim:
    def test_legacy_kwargs_warn_once_and_keep_working(self, tiny_problem, fast_options, monkeypatch):
        monkeypatch.setattr(registration_module, "_legacy_kwargs_warned", False)
        with pytest.warns(DeprecationWarning, match="RegistrationConfig"):
            result = register(
                tiny_problem.template,
                tiny_problem.reference,
                options=fast_options,
                fft_backend="numpy",
            )
        assert result.summary()["fft_backend"] == "numpy"
        # second use: the warning already fired this process
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            register(
                tiny_problem.template,
                tiny_problem.reference,
                options=fast_options,
                fft_backend="numpy",
            )

    def test_solver_class_does_not_warn(self, tiny_problem, fast_options, monkeypatch):
        monkeypatch.setattr(registration_module, "_legacy_kwargs_warned", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            RegistrationSolver(options=fast_options, fft_backend="numpy").run(
                tiny_problem.template, tiny_problem.reference
            )


class TestResultSchema:
    def test_to_dict_is_versioned_and_json_ready(self, tiny_problem, fast_options):
        import json

        result = register(
            tiny_problem.template, tiny_problem.reference, options=fast_options
        )
        doc = result.to_dict()
        assert doc["schema"] == "repro.registration-result"
        assert doc["schema_version"] == 2  # v2 embeds the observability snapshot
        text = json.dumps(doc)  # no numpy scalars may survive
        round_tripped = json.loads(text)
        assert round_tripped["summary"]["relative_residual"] == pytest.approx(
            result.relative_residual
        )
        assert isinstance(round_tripped["plan_pool"]["hits"], int)
        assert np.isfinite(round_tripped["elapsed_seconds"])
        # per-run field-source traffic rides along for artifact storage
        for key in ("loads", "bytes_loaded", "peak_tile_bytes", "prefetch_issued"):
            assert isinstance(round_tripped["field_sources"][key], int)
        assert round_tripped["summary"]["field_source_loads"] == (
            round_tripped["field_sources"]["loads"]
        )

    def test_field_source_traffic_is_counted_per_run(self, tiny_problem, fast_options):
        # the numpy engine gathers tiled from sources (scipy's cubic spline
        # materializes inside map_coordinates), so tile traffic is recorded
        try:
            result = register(
                tiny_problem.template,
                tiny_problem.reference,
                options=fast_options,
                config=RegistrationConfig(
                    interp_backend="numpy", field_source="memmap"
                ),
            )
        finally:
            set_default_field_source(None)
        assert result.field_sources.loads > 0
        assert result.field_sources.bytes_loaded > 0
        assert result.summary()["field_source_loads"] == result.field_sources.loads
