"""Tests for the Gauss-Newton-Krylov driver, the gradient-descent baseline,
the beta continuation and the high-level registration front end."""

import numpy as np
import pytest

from repro.core.metrics import (
    determinant_summary,
    dice_overlap,
    max_pointwise_residual,
    mismatch_reduction,
    relative_residual,
    residual_norm,
)
from repro.core.optim.continuation import BetaContinuation
from repro.core.optim.gauss_newton import GaussNewtonKrylov, SolverOptions
from repro.core.optim.gradient_descent import GradientDescent
from repro.core.problem import RegistrationProblem
from repro.core.registration import RegistrationSolver, register
from repro.data.synthetic import synthetic_registration_problem
from repro.spectral.grid import Grid


@pytest.fixture(scope="module")
def synthetic():
    return synthetic_registration_problem(12)


@pytest.fixture(scope="module")
def problem(synthetic):
    return RegistrationProblem(
        grid=synthetic.grid,
        reference=synthetic.reference,
        template=synthetic.template,
        beta=1e-2,
    )


def quick_options(**overrides):
    defaults = dict(
        gradient_tolerance=1e-2,
        max_newton_iterations=6,
        max_krylov_iterations=15,
    )
    defaults.update(overrides)
    return SolverOptions(**defaults)


class TestSolverOptions:
    def test_quadratic_forcing(self):
        options = SolverOptions(forcing="quadratic", forcing_max=0.5)
        assert options.forcing_term(1.0, 1.0) == pytest.approx(0.5)
        assert options.forcing_term(1e-4, 1.0) == pytest.approx(1e-2)

    def test_linear_and_constant_forcing(self):
        assert SolverOptions(forcing="linear").forcing_term(0.1, 1.0) == pytest.approx(0.1)
        assert SolverOptions(forcing="constant", constant_forcing=0.3).forcing_term(
            1e-8, 1.0
        ) == pytest.approx(0.3)

    def test_unknown_forcing_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(forcing="cubic").forcing_term(1.0, 1.0)


class TestGaussNewtonKrylov:
    def test_reduces_objective_and_gradient(self, problem):
        solver = GaussNewtonKrylov(problem, quick_options())
        result = solver.solve()
        assert result.num_iterations >= 1
        first = result.iterations[0]
        assert result.final_iterate.objective.total <= first.objective
        assert result.final_gradient_norm < result.iterations[0].gradient_norm * 5

    def test_converges_on_easy_problem(self, problem):
        result = GaussNewtonKrylov(problem, quick_options(max_newton_iterations=10)).solve()
        assert result.converged
        assert result.termination_reason == "gradient_tolerance"
        # gradient reduced by the requested factor
        rel = result.final_gradient_norm / result.iterations[0].gradient_norm
        assert rel < 0.2

    def test_zero_iteration_budget_equivalent(self, problem):
        result = GaussNewtonKrylov(problem, quick_options(max_newton_iterations=1)).solve()
        assert result.num_iterations <= 1

    def test_wall_clock_budget(self, problem):
        result = GaussNewtonKrylov(
            problem, quick_options(max_wall_clock_seconds=0.0, max_newton_iterations=50)
        ).solve()
        assert result.termination_reason in ("wall_clock_budget", "gradient_tolerance")
        assert result.num_iterations <= 1

    def test_records_are_consistent(self, problem):
        result = GaussNewtonKrylov(problem, quick_options(max_newton_iterations=3)).solve()
        total = sum(r.hessian_matvecs for r in result.iterations)
        assert total <= result.total_hessian_matvecs + 2
        table = result.convergence_table()
        assert len(table) == result.num_iterations
        assert all("objective" in row for row in table)

    def test_warm_start_from_given_velocity(self, problem, synthetic):
        result = GaussNewtonKrylov(problem, quick_options(max_newton_iterations=2)).solve(
            initial_velocity=0.5 * synthetic.true_velocity
        )
        assert result.final_iterate.objective.total < problem.evaluate_objective(
            problem.zero_velocity()
        ).total


class TestGradientDescentBaseline:
    def test_descent_reduces_objective(self, problem):
        result = GradientDescent(problem, quick_options(max_newton_iterations=5)).solve()
        assert result.num_iterations >= 1
        assert result.total_hessian_matvecs == 0
        objectives = [r.objective for r in result.iterations]
        assert objectives[-1] <= objectives[0]

    def test_newton_converges_faster_than_descent(self, problem):
        budget = 5
        newton = GaussNewtonKrylov(
            problem, quick_options(gradient_tolerance=1e-6, max_newton_iterations=budget)
        ).solve()
        descent = GradientDescent(
            problem, quick_options(gradient_tolerance=1e-6, max_newton_iterations=budget)
        ).solve()
        assert newton.final_iterate.objective.total <= descent.final_iterate.objective.total * 1.05


class TestBetaContinuation:
    def test_continuation_reduces_beta_and_residual(self, synthetic):
        problem = RegistrationProblem(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
            beta=1e-1,
        )
        continuation = BetaContinuation(
            problem,
            quick_options(max_newton_iterations=3),
            initial_beta=1e-1,
            target_beta=1e-3,
            reduction=0.1,
            det_grad_bound=0.05,
        )
        result = continuation.run()
        assert result.num_levels >= 2
        assert result.final_beta <= 1e-1
        assert result.total_hessian_matvecs > 0
        # the accepted map must satisfy the regularity bound
        accepted = [s for s in result.steps if s.accepted]
        assert all(s.det_grad_min >= 0.05 for s in accepted)

    def test_parameter_validation(self, problem):
        with pytest.raises(ValueError):
            BetaContinuation(problem, initial_beta=1e-3, target_beta=1e-1)
        with pytest.raises(ValueError):
            BetaContinuation(problem, reduction=1.5)
        with pytest.raises(ValueError):
            BetaContinuation(problem, max_levels=0)


class TestRegistrationFrontEnd:
    def test_register_reduces_residual(self, synthetic):
        result = register(
            synthetic.template,
            synthetic.reference,
            beta=1e-2,
            options=quick_options(),
            grid=synthetic.grid,
        )
        assert result.relative_residual < 1.0
        assert result.residual_after < result.residual_before
        assert result.is_diffeomorphic
        summary = result.summary()
        assert set(summary) >= {
            "converged",
            "newton_iterations",
            "hessian_matvecs",
            "relative_residual",
            "det_grad_min",
            "time_to_solution",
        }

    def test_incompressible_registration_is_volume_preserving(self):
        problem = synthetic_registration_problem(12, incompressible=True)
        result = register(
            problem.template,
            problem.reference,
            beta=1e-2,
            incompressible=True,
            options=quick_options(),
            grid=problem.grid,
        )
        assert abs(result.det_grad_stats["min"] - 1.0) < 0.2
        assert abs(result.det_grad_stats["max"] - 1.0) < 0.2

    def test_shape_mismatch_rejected(self, synthetic):
        with pytest.raises(ValueError):
            register(synthetic.template, synthetic.reference[:-1])

    def test_unknown_optimizer_rejected(self, synthetic):
        solver = RegistrationSolver(optimizer="adam", options=quick_options())
        with pytest.raises(ValueError):
            solver.run(synthetic.template, synthetic.reference, grid=synthetic.grid)

    def test_grid_shape_must_match_images(self, synthetic):
        solver = RegistrationSolver(options=quick_options())
        with pytest.raises(ValueError):
            solver.run(synthetic.template, synthetic.reference, grid=Grid((8, 8, 8)))

    def test_gradient_descent_front_end(self, synthetic):
        result = register(
            synthetic.template,
            synthetic.reference,
            optimizer="gradient_descent",
            options=quick_options(max_newton_iterations=4),
            grid=synthetic.grid,
        )
        assert result.num_hessian_matvecs == 0
        assert result.relative_residual <= 1.0


class TestMetrics:
    def test_residual_norms(self, synthetic):
        grid = synthetic.grid
        assert residual_norm(synthetic.reference, synthetic.reference, grid) == 0.0
        before = residual_norm(synthetic.reference, synthetic.template, grid)
        assert before > 0.0
        assert relative_residual(
            synthetic.reference, synthetic.template, synthetic.template, grid
        ) == pytest.approx(1.0)
        assert mismatch_reduction(
            synthetic.reference, synthetic.template, synthetic.reference, grid
        ) == pytest.approx(1.0)

    def test_max_pointwise_residual(self):
        a = np.zeros((4, 4, 4))
        b = np.zeros((4, 4, 4))
        b[1, 2, 3] = 2.5
        assert max_pointwise_residual(a, b) == 2.5

    def test_determinant_summary(self):
        det = np.array([[[0.5, 1.0], [1.5, -0.1]]])
        stats = determinant_summary(det)
        assert stats["min"] == pytest.approx(-0.1)
        assert stats["max"] == pytest.approx(1.5)
        assert stats["fraction_nonpositive"] == pytest.approx(0.25)

    def test_dice_overlap(self):
        a = np.zeros((4, 4, 4), dtype=bool)
        b = np.zeros((4, 4, 4), dtype=bool)
        assert dice_overlap(a, b) == 1.0
        a[:2] = True
        b[:2] = True
        assert dice_overlap(a, b) == 1.0
        b[:] = False
        b[2:] = True
        assert dice_overlap(a, b) == 0.0
