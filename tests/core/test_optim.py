"""Tests for the optimization building blocks: PCG, line search, preconditioner."""

import numpy as np
import pytest

from repro.core.optim.line_search import ArmijoLineSearch
from repro.core.optim.pcg import pcg
from repro.core.preconditioner import SpectralPreconditioner
from repro.core.regularization import H1Regularization
from repro.runtime.cancellation import CancelToken, SolveCancelled
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators

from tests.fixtures import smooth_vector_field


@pytest.fixture(scope="module")
def grid():
    return Grid((8, 8, 8))


@pytest.fixture(scope="module")
def ops(grid):
    return SpectralOperators(grid)


def spd_operator(grid, ops, alpha=1.0):
    """A simple SPD operator on velocity fields: alpha*I - laplacian."""

    def apply(v):
        return alpha * v - ops.vector_laplacian(v)

    return apply


class TestPCG:
    def test_solves_spd_system(self, grid, ops):
        matvec = spd_operator(grid, ops)
        rhs = 0.5 * smooth_vector_field(grid, seed=1)
        result = pcg(matvec, rhs, grid, rel_tol=1e-10, max_iterations=200)
        assert result.converged
        np.testing.assert_allclose(matvec(result.solution), rhs, atol=1e-7)

    def test_zero_rhs_returns_zero(self, grid, ops):
        result = pcg(spd_operator(grid, ops), grid.zeros_vector(), grid)
        assert result.iterations == 0
        assert result.converged
        np.testing.assert_array_equal(result.solution, 0.0)

    def test_respects_relative_tolerance(self, grid, ops):
        matvec = spd_operator(grid, ops)
        rhs = smooth_vector_field(grid, seed=2)
        loose = pcg(matvec, rhs, grid, rel_tol=1e-1, max_iterations=100)
        tight = pcg(matvec, rhs, grid, rel_tol=1e-8, max_iterations=100)
        assert loose.iterations <= tight.iterations
        assert loose.final_relative_residual <= 1e-1

    def test_max_iterations_cap(self, grid, ops):
        matvec = spd_operator(grid, ops)
        rhs = smooth_vector_field(grid, seed=3)
        result = pcg(matvec, rhs, grid, rel_tol=1e-14, max_iterations=2)
        assert result.iterations == 2
        assert not result.converged

    def test_negative_curvature_detected(self, grid):
        result = pcg(lambda v: -v, smooth_vector_field(grid, seed=4), grid, rel_tol=1e-8)
        assert result.negative_curvature
        # falls back to the preconditioned gradient direction
        assert np.any(result.solution)

    def test_preconditioner_reduces_iterations(self, grid, ops):
        # ill-conditioned operator: biharmonic plus small identity
        def matvec(v):
            return 1e-3 * v + ops.vector_biharmonic(v)

        def preconditioner(r):
            sym = ops._k4.copy()
            sym = 1.0 / (1e-3 + sym)
            return ops.apply_vector_symbol(r, sym)

        rhs = smooth_vector_field(grid, seed=5)
        plain = pcg(matvec, rhs, grid, rel_tol=1e-8, max_iterations=300)
        prec = pcg(matvec, rhs, grid, preconditioner=preconditioner, rel_tol=1e-8, max_iterations=300)
        assert prec.iterations < plain.iterations

    def test_initial_guess_supported(self, grid, ops):
        matvec = spd_operator(grid, ops)
        rhs = smooth_vector_field(grid, seed=6)
        exact = pcg(matvec, rhs, grid, rel_tol=1e-12, max_iterations=300).solution
        warm = pcg(matvec, rhs, grid, rel_tol=1e-10, max_iterations=300, x0=exact)
        assert warm.iterations <= 2

    def test_invalid_arguments(self, grid, ops):
        with pytest.raises(ValueError):
            pcg(spd_operator(grid, ops), grid.zeros_vector(), grid, rel_tol=-1.0)
        with pytest.raises(ValueError):
            pcg(spd_operator(grid, ops), grid.zeros_vector(), grid, max_iterations=0)

    def test_precancelled_token_stops_before_first_matvec(self, grid, ops):
        """The Krylov safe point fires before any Hessian application."""
        applications = []

        def counting_matvec(v):
            applications.append(1)
            return spd_operator(grid, ops)(v)

        token = CancelToken()
        token.cancel()
        with pytest.raises(SolveCancelled, match="pcg solve"):
            pcg(
                counting_matvec,
                smooth_vector_field(grid, seed=5),
                grid,
                rel_tol=1e-12,
                cancel_token=token,
            )
        assert applications == []

    def test_cancellation_mid_krylov_solve(self, grid, ops):
        """A token cancelled during the solve stops at the next iteration.

        This is the satellite guarantee: a long Krylov solve (up to
        ``max_iterations`` mat-vecs, each two transport solves) honors the
        token promptly instead of deferring to the outer Newton loop.
        """
        token = CancelToken()
        applications = []

        def cancelling_matvec(v):
            applications.append(1)
            if len(applications) == 3:
                token.cancel()
            return spd_operator(grid, ops)(v)

        with pytest.raises(SolveCancelled, match="pcg solve"):
            pcg(
                cancelling_matvec,
                smooth_vector_field(grid, seed=6),
                grid,
                rel_tol=1e-14,
                max_iterations=100,
                cancel_token=token,
            )
        # exactly the mat-vec that latched the token, and not one more
        assert len(applications) == 3

    def test_none_token_is_a_no_op(self, grid, ops):
        result = pcg(
            spd_operator(grid, ops),
            smooth_vector_field(grid, seed=7),
            grid,
            rel_tol=1e-8,
            cancel_token=None,
        )
        assert result.converged


class TestArmijoLineSearch:
    @staticmethod
    def quadratic(grid):
        center = 0.3 * np.ones((3, *grid.shape))

        def objective(v):
            return float(0.5 * grid.inner(v - center, v - center))

        return objective, center

    def test_accepts_full_newton_step(self, grid):
        objective, center = self.quadratic(grid)
        v = grid.zeros_vector()
        gradient = v - center
        direction = -gradient
        ls = ArmijoLineSearch()
        result = ls.search(objective, grid, v, objective(v), gradient, direction)
        assert result.success
        assert result.step_length == pytest.approx(1.0)
        assert result.objective < objective(v)

    def test_backtracks_on_too_long_direction(self, grid):
        objective, center = self.quadratic(grid)
        v = grid.zeros_vector()
        gradient = v - center
        direction = -20.0 * gradient  # overshoots badly
        result = ArmijoLineSearch().search(objective, grid, v, objective(v), gradient, direction)
        assert result.success
        assert result.step_length < 1.0

    def test_reflects_ascent_direction(self, grid):
        objective, center = self.quadratic(grid)
        v = grid.zeros_vector()
        gradient = v - center
        direction = gradient  # ascent direction
        result = ArmijoLineSearch().search(objective, grid, v, objective(v), gradient, direction)
        assert result.success
        assert result.step_length < 0.0  # signed step along the original direction

    def test_failure_after_max_evaluations(self, grid):
        v = grid.zeros_vector()
        gradient = -np.ones((3, *grid.shape))
        direction = np.ones((3, *grid.shape))
        # objective that never decreases
        result = ArmijoLineSearch(max_evaluations=5).search(
            lambda x: 1.0 + float(np.sum(x**2)), grid, v, 1.0, gradient, direction
        )
        assert not result.success
        assert result.step_length == 0.0
        assert result.evaluations == 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ArmijoLineSearch(contraction=1.5)
        with pytest.raises(ValueError):
            ArmijoLineSearch(max_evaluations=0)
        with pytest.raises(ValueError):
            ArmijoLineSearch(c1=-1.0)


class TestSpectralPreconditioner:
    def test_variants(self, ops):
        reg = H1Regularization(ops, 1e-2)
        for variant in ("inverse_regularization", "shifted", "none"):
            prec = SpectralPreconditioner(reg, variant)
            v = smooth_vector_field(ops.grid, seed=7)
            out = prec(v)
            assert out.shape == v.shape
        with pytest.raises(ValueError):
            SpectralPreconditioner(reg, "multigrid")

    def test_none_variant_is_identity(self, ops):
        reg = H1Regularization(ops, 1e-2)
        prec = SpectralPreconditioner(reg, "none")
        v = smooth_vector_field(ops.grid, seed=8)
        np.testing.assert_array_equal(prec(v), v)

    def test_inverse_regularization_inverts_operator(self, ops):
        reg = H1Regularization(ops, 0.5)
        prec = SpectralPreconditioner(reg, "inverse_regularization")
        v = smooth_vector_field(ops.grid, seed=9)
        v -= v.mean(axis=(1, 2, 3), keepdims=True)
        np.testing.assert_allclose(prec(reg.gradient(v)), v, atol=1e-8)

    def test_preconditioner_is_spd(self, ops):
        reg = H1Regularization(ops, 1e-2)
        for variant in ("inverse_regularization", "shifted"):
            prec = SpectralPreconditioner(reg, variant)
            a = smooth_vector_field(ops.grid, seed=10)
            b = smooth_vector_field(ops.grid, seed=11)
            assert ops.grid.inner(prec(a), b) == pytest.approx(
                ops.grid.inner(a, prec(b)), rel=1e-9
            )
            assert ops.grid.inner(prec(a), a) > 0.0

    def test_rebuild_with_new_beta(self, ops):
        reg = H1Regularization(ops, 1e-2)
        prec = SpectralPreconditioner(reg)
        new = prec.rebuild(reg.with_beta(1e-3))
        v = smooth_vector_field(ops.grid, seed=12)
        v -= v.mean(axis=(1, 2, 3), keepdims=True)
        # smaller beta -> larger preconditioned output on non-constant modes
        assert ops.grid.norm(new(v)) > ops.grid.norm(prec(v))
