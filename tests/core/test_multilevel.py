"""Tests for the coarse-to-fine (grid continuation) extension."""

import pytest

from repro.core.optim.gauss_newton import SolverOptions
from repro.core.optim.multilevel import MultilevelRegistration
from repro.data.synthetic import synthetic_registration_problem


@pytest.fixture(scope="module")
def synthetic():
    return synthetic_registration_problem(16)


def options(**overrides):
    defaults = dict(
        gradient_tolerance=1e-2, max_newton_iterations=4, max_krylov_iterations=10
    )
    defaults.update(overrides)
    return SolverOptions(**defaults)


class TestMultilevelRegistration:
    def test_two_level_solve_reduces_mismatch(self, synthetic):
        driver = MultilevelRegistration(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
            num_levels=2,
            beta=1e-2,
            options=options(),
        )
        result = driver.run()
        assert len(result.levels) == 2
        assert result.levels[0].grid_shape == (8, 8, 8)
        assert result.levels[1].grid_shape == (16, 16, 16)
        assert result.velocity.shape == (3, 16, 16, 16)
        fine = result.fine_result
        assert fine.final_iterate.objective.distance < 0.7 * 0.5 * synthetic.grid.inner(
            synthetic.reference - synthetic.template, synthetic.reference - synthetic.template
        )
        assert result.total_hessian_matvecs > 0

    def test_levels_are_capped_by_grid_size(self, synthetic):
        driver = MultilevelRegistration(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
            num_levels=6,
            options=options(max_newton_iterations=1),
        )
        # 16 -> 8 -> 4 is the smallest admissible hierarchy (>= 4 points/dim)
        assert driver.num_levels == 3

    def test_single_level_equals_plain_solver_grid(self, synthetic):
        driver = MultilevelRegistration(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
            num_levels=1,
            options=options(max_newton_iterations=2),
        )
        result = driver.run()
        assert len(result.levels) == 1
        assert result.levels[0].grid_shape == synthetic.grid.shape

    def test_coarse_warm_start_helps_fine_level(self, synthetic):
        """With the same fine-level iteration budget, the multilevel warm start
        reaches an objective at least as good as starting from zero."""
        budget = options(max_newton_iterations=2, max_krylov_iterations=8)
        multilevel = MultilevelRegistration(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
            num_levels=2,
            options=budget,
        ).run()
        single = MultilevelRegistration(
            grid=synthetic.grid,
            reference=synthetic.reference,
            template=synthetic.template,
            num_levels=1,
            options=budget,
        ).run()
        assert (
            multilevel.fine_result.final_objective
            <= single.fine_result.final_objective * 1.05
        )

    def test_shape_validation(self, synthetic):
        with pytest.raises(ValueError):
            MultilevelRegistration(
                grid=synthetic.grid,
                reference=synthetic.reference[:-1],
                template=synthetic.template,
            )
        with pytest.raises(ValueError):
            MultilevelRegistration(
                grid=synthetic.grid,
                reference=synthetic.reference,
                template=synthetic.template,
                num_levels=0,
            )

    def test_incompressible_multilevel(self):
        problem = synthetic_registration_problem(16, incompressible=True)
        result = MultilevelRegistration(
            grid=problem.grid,
            reference=problem.reference,
            template=problem.template,
            num_levels=2,
            incompressible=True,
            options=options(max_newton_iterations=3),
        ).run()
        from repro.spectral.operators import SpectralOperators

        ops = SpectralOperators(problem.grid)
        assert ops.is_divergence_free(result.velocity, tol=1e-6)
