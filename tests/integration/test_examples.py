"""Smoke tests for the runnable examples (deliverable (b)).

Each example is executed as a subprocess at the smallest resolution that
still exercises the full pipeline, and its output is checked for the
quantities it promises to report.  This keeps the examples from rotting as
the library evolves.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

pytestmark = pytest.mark.slow


def run_example(name: str, *args: str, timeout: float = 300.0) -> str:
    # the child process does not inherit pytest's `pythonpath` ini setting,
    # so export src/ explicitly: the examples must run from a plain checkout
    # (no editable install) exactly like the tier-1 suite does
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_examples_directory_contents(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "brain_registration.py",
            "volume_preserving_registration.py",
            "distributed_kernels_demo.py",
            "scaling_study.py",
        } <= names

    def test_quickstart(self):
        out = run_example("quickstart.py", "12")
        assert "Convergence history" in out
        assert "Registration summary" in out
        assert "diffeomorphic" in out
        assert "mismatch removed" in out

    def test_volume_preserving_registration(self):
        out = run_example("volume_preserving_registration.py", "12")
        assert "div v = 0" in out
        assert "volume preserving" in out.lower()

    def test_brain_registration(self):
        out = run_example("brain_registration.py", "12")
        assert "Registration summary" in out
        assert "det(grad y1)" in out

    @pytest.mark.parametrize("script", ["quickstart.py"])
    def test_examples_have_module_docstring_and_main(self, script):
        text = (EXAMPLES_DIR / script).read_text()
        assert text.lstrip().startswith(('"""', "#!"))
        assert "def main(" in text
        assert '__name__ == "__main__"' in text
