"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.io import save_problem
from repro.data.synthetic import synthetic_registration_problem


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_register_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["register"])

    def test_register_sources_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["register", "--synthetic", "8", "--brain", "8"])

    def test_defaults(self):
        args = build_parser().parse_args(["register", "--synthetic", "16"])
        assert args.beta == pytest.approx(1e-2)
        assert args.nt == 4
        assert args.optimizer == "gauss_newton"
        assert args.fft_backend is None
        assert args.interp_backend is None

    def test_interp_backend_choices(self):
        args = build_parser().parse_args(
            ["register", "--synthetic", "16", "--interp-backend", "numpy"]
        )
        assert args.interp_backend == "numpy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["register", "--synthetic", "16", "--interp-backend", "cuda"]
            )


class TestRegisterCommand:
    def test_synthetic_registration_writes_output(self, tmp_path, capsys):
        out = tmp_path / "result.npz"
        code = main(
            [
                "register",
                "--synthetic", "12",
                "--beta", "1e-2",
                "--max-newton", "4",
                "--max-krylov", "8",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "Registration summary" in captured
        assert out.exists()
        with np.load(out) as data:
            assert data["velocity"].shape == (3, 12, 12, 12)
            assert data["determinant"].shape == (12, 12, 12)
            assert float(data["residual_after"]) < float(data["residual_before"])

    def test_registration_from_npz_input(self, tmp_path, capsys):
        problem = synthetic_registration_problem(12)
        path = tmp_path / "pair.npz"
        save_problem(path, problem.reference, problem.template, grid=problem.grid)
        code = main(
            ["register", "--input", str(path), "--max-newton", "3", "--max-krylov", "6"]
        )
        assert code == 0
        assert "Registration summary" in capsys.readouterr().out

    def test_interp_backend_run(self, capsys):
        code = main(
            [
                "register",
                "--synthetic", "12",
                "--interp-backend", "numpy",
                "--max-newton", "2",
                "--max-krylov", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Registration summary" in out
        assert "numpy" in out

    def test_unavailable_interp_backend_is_a_clean_error(self, capsys):
        try:
            import numba  # noqa: F401

            pytest.skip("numba is installed; unavailability path not testable")
        except ImportError:
            pass
        code = main(["register", "--synthetic", "12", "--interp-backend", "numba"])
        assert code == 2
        assert "not available" in capsys.readouterr().err

    def test_brain_incompressible_run(self, capsys):
        code = main(
            [
                "register",
                "--brain", "12",
                "--incompressible",
                "--beta", "1e-2",
                "--max-newton", "2",
                "--max-krylov", "6",
            ]
        )
        assert code == 0
        assert "Registration summary" in capsys.readouterr().out


class TestScalingCommand:
    def test_table_output(self, capsys):
        assert main(["scaling", "--table", "I"]) == 0
        out = capsys.readouterr().out
        assert "run #1" in out
        assert "paper" in out and "model" in out

    def test_custom_configuration(self, capsys):
        assert main(["scaling", "--grid", "128", "--tasks", "64", "--machine", "maverick"]) == 0
        out = capsys.readouterr().out
        assert "Modeled cost" in out
        assert "128^3" in out

    def test_missing_arguments_is_an_error(self, capsys):
        assert main(["scaling"]) == 2
