"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.io import save_problem
from repro.data.synthetic import synthetic_registration_problem


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_register_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["register"])

    def test_register_sources_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["register", "--synthetic", "8", "--brain", "8"])

    def test_defaults(self):
        args = build_parser().parse_args(["register", "--synthetic", "16"])
        assert args.beta == pytest.approx(1e-2)
        assert args.nt == 4
        assert args.optimizer == "gauss_newton"
        assert args.fft_backend is None
        assert args.interp_backend is None

    def test_interp_backend_choices(self):
        args = build_parser().parse_args(
            ["register", "--synthetic", "16", "--interp-backend", "numpy"]
        )
        assert args.interp_backend == "numpy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["register", "--synthetic", "16", "--interp-backend", "cuda"]
            )

    def test_runtime_flags(self):
        args = build_parser().parse_args(
            ["register", "--synthetic", "16", "--plan-pool-bytes", "1000000", "--workers", "2"]
        )
        assert args.plan_pool_bytes == 1000000
        assert args.workers == 2
        defaults = build_parser().parse_args(["register", "--synthetic", "16"])
        assert defaults.plan_pool_bytes is None
        assert defaults.workers is None
        assert defaults.plan_layout is None

    def test_plan_layout_choices(self):
        args = build_parser().parse_args(
            ["register", "--synthetic", "16", "--plan-layout", "streaming"]
        )
        assert args.plan_layout == "streaming"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["register", "--synthetic", "16", "--plan-layout", "sparse"]
            )


class TestRegisterCommand:
    def test_synthetic_registration_writes_output(self, tmp_path, capsys):
        out = tmp_path / "result.npz"
        code = main(
            [
                "register",
                "--synthetic", "12",
                "--beta", "1e-2",
                "--max-newton", "4",
                "--max-krylov", "8",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "Registration summary" in captured
        assert out.exists()
        with np.load(out) as data:
            assert data["velocity"].shape == (3, 12, 12, 12)
            assert data["determinant"].shape == (12, 12, 12)
            assert float(data["residual_after"]) < float(data["residual_before"])

    def test_registration_from_npz_input(self, tmp_path, capsys):
        problem = synthetic_registration_problem(12)
        path = tmp_path / "pair.npz"
        save_problem(path, problem.reference, problem.template, grid=problem.grid)
        code = main(
            ["register", "--input", str(path), "--max-newton", "3", "--max-krylov", "6"]
        )
        assert code == 0
        assert "Registration summary" in capsys.readouterr().out

    def test_interp_backend_run(self, capsys):
        code = main(
            [
                "register",
                "--synthetic", "12",
                "--interp-backend", "numpy",
                "--max-newton", "2",
                "--max-krylov", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Registration summary" in out
        assert "numpy" in out

    def test_plan_pool_flag_and_verbose_stats(self, capsys):
        from repro.runtime import configure_plan_pool, set_default_workers

        try:
            code = main(
                [
                    "--verbose",
                    "register",
                    "--synthetic", "12",
                    "--plan-pool-bytes", "50000000",
                    "--workers", "1",
                    "--max-newton", "2",
                    "--max-krylov", "4",
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "plan_pool_hits" in out
            assert "plan pool:" in out and "evictions" in out
        finally:
            configure_plan_pool(None)
            set_default_workers(None)

    def test_plan_layout_run_sets_process_default(self, capsys, monkeypatch):
        import os

        from repro.transport.kernels import (
            PLAN_LAYOUT_ENV_VAR,
            default_plan_layout,
            set_default_plan_layout,
        )

        monkeypatch.delenv(PLAN_LAYOUT_ENV_VAR, raising=False)
        try:
            code = main(
                [
                    "register",
                    "--synthetic", "12",
                    "--plan-layout", "streaming",
                    "--max-newton", "2",
                    "--max-krylov", "4",
                ]
            )
            assert code == 0
            assert "Registration summary" in capsys.readouterr().out
            assert default_plan_layout() == "streaming"
            # the CLI flag never leaks into the environment (child processes)
            assert PLAN_LAYOUT_ENV_VAR not in os.environ
        finally:
            set_default_plan_layout(None)
        assert default_plan_layout() == "auto"

    def test_plan_layout_auto_flag_accepted(self, capsys):
        from repro.transport.kernels import set_default_plan_layout

        try:
            code = main(
                [
                    "register",
                    "--synthetic", "12",
                    "--plan-layout", "auto",
                    "--max-newton", "2",
                    "--max-krylov", "4",
                ]
            )
            assert code == 0
            assert "Registration summary" in capsys.readouterr().out
        finally:
            set_default_plan_layout(None)

    def test_malformed_plan_layout_env_is_a_clean_error(self, capsys, monkeypatch):
        from repro.transport.kernels import PLAN_LAYOUT_ENV_VAR

        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, "leann")
        assert main(["register", "--synthetic", "12"]) == 2
        err = capsys.readouterr().err
        assert PLAN_LAYOUT_ENV_VAR in err and "streaming" in err

    def test_malformed_auto_fraction_env_is_a_clean_error(self, capsys, monkeypatch):
        from repro.runtime import AUTO_FRACTION_ENV_VAR

        monkeypatch.setenv(AUTO_FRACTION_ENV_VAR, "2.0")
        assert main(["register", "--synthetic", "12"]) == 2
        assert AUTO_FRACTION_ENV_VAR in capsys.readouterr().err

    def test_malformed_interp_backend_env_is_a_clean_error(self, capsys, monkeypatch):
        from repro.transport.kernels import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "numpyy")
        assert main(["register", "--synthetic", "12"]) == 2
        err = capsys.readouterr().err
        assert BACKEND_ENV_VAR in err and "scipy" in err

    def test_malformed_fft_backend_env_is_a_clean_error(self, capsys, monkeypatch):
        from repro.spectral.backends import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "fftw3")
        assert main(["register", "--synthetic", "12"]) == 2
        err = capsys.readouterr().err
        assert BACKEND_ENV_VAR in err and "numpy" in err

    def test_negative_plan_pool_budget_is_a_clean_error(self, capsys):
        code = main(
            ["register", "--synthetic", "12", "--plan-pool-bytes", "-1"]
        )
        assert code == 2
        assert "non-negative" in capsys.readouterr().err

    def test_malformed_runtime_env_vars_are_clean_errors(self, capsys, monkeypatch):
        from repro.runtime import POOL_BYTES_ENV_VAR, INTERP_WORKERS_ENV_VAR
        from repro.runtime import configure_plan_pool

        monkeypatch.setenv(POOL_BYTES_ENV_VAR, "512M")
        assert main(["register", "--synthetic", "12"]) == 2
        assert POOL_BYTES_ENV_VAR in capsys.readouterr().err
        monkeypatch.delenv(POOL_BYTES_ENV_VAR)
        configure_plan_pool(None)

        monkeypatch.setenv(INTERP_WORKERS_ENV_VAR, "two")
        assert main(["register", "--synthetic", "12"]) == 2
        assert INTERP_WORKERS_ENV_VAR in capsys.readouterr().err

    def test_unavailable_interp_backend_is_a_clean_error(self, capsys):
        try:
            import numba  # noqa: F401

            pytest.skip("numba is installed; unavailability path not testable")
        except ImportError:
            pass
        code = main(["register", "--synthetic", "12", "--interp-backend", "numba"])
        assert code == 2
        assert "not available" in capsys.readouterr().err

    def test_brain_incompressible_run(self, capsys):
        code = main(
            [
                "register",
                "--brain", "12",
                "--incompressible",
                "--beta", "1e-2",
                "--max-newton", "2",
                "--max-krylov", "6",
            ]
        )
        assert code == 0
        assert "Registration summary" in capsys.readouterr().out


class TestScalingCommand:
    def test_table_output(self, capsys):
        assert main(["scaling", "--table", "I"]) == 0
        out = capsys.readouterr().out
        assert "run #1" in out
        assert "paper" in out and "model" in out

    def test_custom_configuration(self, capsys):
        assert main(["scaling", "--grid", "128", "--tasks", "64", "--machine", "maverick"]) == 0
        out = capsys.readouterr().out
        assert "Modeled cost" in out
        assert "128^3" in out

    def test_missing_arguments_is_an_error(self, capsys):
        assert main(["scaling"]) == 2


class TestServeCommand:
    def _serve_args(self, *extra):
        return [
            "serve",
            "--synthetic", "8",
            "--subjects", "2",
            "--beta", "1e-1",
            "--max-newton", "1",
            "--max-krylov", "3",
            "--num-workers", "2",
            *extra,
        ]

    def test_serve_requires_a_source_or_http(self, monkeypatch, capsys):
        # no parse-time failure anymore (--http mode has no population
        # source), but a bare serve still fails fast with a clean error
        monkeypatch.delenv("REPRO_HTTP_PORT", raising=False)
        assert main(["serve"]) == 2
        assert "--http" in capsys.readouterr().err

    def test_serve_rejects_http_with_a_source(self, capsys):
        assert main(["serve", "--http", "0", "--synthetic", "8"]) == 2
        assert "--http" in capsys.readouterr().err

    def test_serve_rejects_out_of_range_http_port(self, capsys):
        assert main(["serve", "--http", "99999"]) == 2
        assert "65535" in capsys.readouterr().err

    def test_serve_surfaces_malformed_http_port_env(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_HTTP_PORT", "eighty")
        assert main(["serve", "--synthetic", "8", "--subjects", "2"]) == 2
        assert "REPRO_HTTP_PORT" in capsys.readouterr().err

    def test_synthetic_atlas_run(self, tmp_path, capsys):
        out_path = tmp_path / "atlas.npz"
        code = main(self._serve_args("--output", str(out_path)))
        assert code == 0
        out = capsys.readouterr().out
        assert "Atlas registration summary" in out
        assert "plan pool:" in out
        data = np.load(out_path)
        assert data["mean_deformed"].shape == (8, 8, 8)
        assert data["relative_residuals"].shape == (2,)

    def test_serve_writes_job_artifacts(self, tmp_path, capsys):
        art_dir = tmp_path / "artifacts"
        code = main(self._serve_args("--artifacts-dir", str(art_dir)))
        assert code == 0
        artifacts = sorted(art_dir.glob("job-*.json"))
        assert len(artifacts) == 2
        import json

        doc = json.loads(artifacts[0].read_text())
        assert doc["schema"] == "repro.service-job"
        assert doc["job"]["status"] == "done"
        assert doc["job"]["metrics"]["result"]["schema"] == "repro.registration-result"

    def test_serve_from_npz_population(self, tmp_path, capsys):
        population_path = tmp_path / "population.npz"
        problem = synthetic_registration_problem(8)
        np.savez(
            population_path,
            reference=problem.reference,
            subjects=np.stack([problem.template, problem.template], axis=0),
        )
        code = main(
            [
                "serve",
                "--input", str(population_path),
                "--beta", "1e-1",
                "--max-newton", "1",
                "--max-krylov", "3",
                "--num-workers", "1",
            ]
        )
        assert code == 0
        assert "num_subjects" in capsys.readouterr().out

    def test_serve_npz_missing_keys_is_a_clean_error(self, tmp_path, capsys):
        bad_path = tmp_path / "bad.npz"
        np.savez(bad_path, foo=np.zeros(3))
        code = main(["serve", "--input", str(bad_path)])
        assert code == 2
        assert "subjects" in capsys.readouterr().err

    def test_serve_accepts_config_flags(self, capsys):
        code = main(self._serve_args("--fft-backend", "numpy", "--plan-layout", "lean"))
        assert code == 0

    def test_serve_main_entry_point(self, capsys):
        from repro.cli import serve_main

        code = serve_main(
            [
                "--synthetic", "8",
                "--subjects", "2",
                "--beta", "1e-1",
                "--max-newton", "1",
                "--max-krylov", "3",
                "--num-workers", "1",
            ]
        )
        assert code == 0
        assert "Atlas registration summary" in capsys.readouterr().out


def _extract_result_document(out: str) -> dict:
    """Parse the verbose report's embedded JSON result document.

    The document is printed with ``indent=2``, so it is the block between
    the first column-0 ``{`` line and the next column-0 ``}`` line.
    """
    import json

    start = out.index("\n{\n") + 1
    end = out.index("\n}\n", start) + 2
    return json.loads(out[start:end])


class TestObservabilityCLI:
    """The ``--trace``/``--trace-out`` flags and the verbose report."""

    def _register_args(self, *extra):
        return [
            "register",
            "--synthetic", "12",
            "--max-newton", "2",
            "--max-krylov", "4",
            *extra,
        ]

    def test_trace_flags_parse(self):
        args = build_parser().parse_args(
            self._register_args("--trace", "--trace-out", "run.json")
        )
        assert args.trace is True
        assert args.trace_out == "run.json"
        defaults = build_parser().parse_args(self._register_args())
        assert defaults.trace is None
        assert defaults.trace_out is None

    def test_trace_out_writes_a_loadable_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.observability import get_trace_recorder, validate_chrome_trace

        get_trace_recorder().clear()
        trace_path = tmp_path / "run.trace.json"
        code = main(self._register_args("--trace-out", str(trace_path)))
        assert code == 0
        assert f"trace written to {trace_path}" in capsys.readouterr().out
        document = json.loads(trace_path.read_text())
        validate_chrome_trace(document)
        names = {event["name"] for event in document["traceEvents"]}
        assert "registration.solve" in names
        assert "fft.forward" in names
        assert "newton.iteration" in names

    def test_trace_env_var_enables_tracing(self, tmp_path):
        # REPRO_TRACE is read at interpreter startup, so exercise the real
        # CLI path: a fresh process with the variable exported.
        import json
        import os
        import subprocess
        import sys

        from repro.observability import TRACE_ENV_VAR, TRACE_OUT_ENV_VAR, validate_chrome_trace

        trace_path = tmp_path / "env.trace.json"
        env = dict(os.environ)
        env[TRACE_ENV_VAR] = "1"
        env[TRACE_OUT_ENV_VAR] = str(trace_path)
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(sys.argv[1:]))",
                *self._register_args(),
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        validate_chrome_trace(json.loads(trace_path.read_text()))

    def test_malformed_trace_env_is_a_clean_error(self, capsys, monkeypatch):
        from repro.observability import TRACE_ENV_VAR

        monkeypatch.setenv(TRACE_ENV_VAR, "maybe")
        assert main(self._register_args()) == 2
        assert TRACE_ENV_VAR in capsys.readouterr().err

    def test_malformed_io_workers_env_is_a_clean_error(self, capsys, monkeypatch):
        from repro.runtime.workers import IO_WORKERS_ENV_VAR

        monkeypatch.setenv(IO_WORKERS_ENV_VAR, "fast")
        assert main(self._register_args()) == 2
        assert IO_WORKERS_ENV_VAR in capsys.readouterr().err

    def test_malformed_service_workers_env_is_a_clean_error(self, capsys, monkeypatch):
        from repro.runtime.workers import SERVICE_WORKERS_ENV_VAR

        monkeypatch.setenv(SERVICE_WORKERS_ENV_VAR, "3.5")
        assert main(self._register_args()) == 2
        assert SERVICE_WORKERS_ENV_VAR in capsys.readouterr().err

    def test_serve_rejects_malformed_worker_envs_too(self, capsys, monkeypatch):
        from repro.runtime.workers import IO_WORKERS_ENV_VAR

        monkeypatch.setenv(IO_WORKERS_ENV_VAR, "many")
        code = main(["serve", "--synthetic", "8", "--subjects", "1"])
        assert code == 2
        assert IO_WORKERS_ENV_VAR in capsys.readouterr().err

    def test_verbose_report_agrees_with_result_document(self, capsys):
        from repro.observability import get_trace_recorder

        recorder = get_trace_recorder()
        recorder.clear()
        code = main(["--verbose", *self._register_args("--trace")])
        assert code == 0
        out = capsys.readouterr().out
        doc = _extract_result_document(out)
        assert doc["schema"] == "repro.registration-result"
        assert doc["schema_version"] == 2

        # embedded observability snapshot: enabled trace, valid document
        from repro.observability import validate_snapshot

        snap = doc["observability"]
        validate_snapshot(snap)
        assert snap["trace"]["enabled"] is True

        # plan-pool line: process-wide stats, i.e. the snapshot's view
        # (the doc's top-level plan_pool block is the solve-only delta and
        # excludes the post-solve det-grad plans)
        pool = snap["plan_pool"]
        assert f"plan pool: {pool['hits']} hits, {pool['misses']} misses" in out
        delta = doc["plan_pool"]
        assert delta["misses"] >= 1
        assert delta["misses"] <= pool["misses"]

        # field-source traffic line vs the document
        sources = doc["field_sources"]
        assert f"field sources: {sources['loads']} tile loads" in out

        # phase-timing table: one row per span name, spans/count columns
        # agreeing with the recorder (= the document's span_counts)
        assert "phase timings (traced spans):" in out
        table = out.split("phase timings (traced spans):\n", 1)[1]
        rows = {}
        for line in table.splitlines()[1:]:
            parts = line.split()
            if len(parts) != 5 or not parts[1].isdigit():
                break
            rows[parts[0]] = (int(parts[1]), int(parts[2]))
        span_counts = snap["trace"]["span_counts"]
        assert set(rows) == set(span_counts)
        for name, (num_spans, total_count) in rows.items():
            assert total_count == span_counts[name]
            assert 1 <= num_spans <= total_count

    def test_verbose_layout_decisions_agree_with_log(self, capsys):
        from repro.runtime import layout_decision_log

        code = main(
            ["--verbose", *self._register_args("--plan-layout", "auto")]
        )
        assert code == 0
        out = capsys.readouterr().out
        decisions = layout_decision_log()
        if decisions.total:
            assert f"auto plan layout: {decisions.total} decisions" in out


class TestFieldSourceMode:
    """The ``--field-source`` flag and the out-of-core register/serve paths."""

    def test_flag_choices(self):
        args = build_parser().parse_args(
            ["register", "--synthetic", "12", "--field-source", "memmap"]
        )
        assert args.field_source == "memmap"
        defaults = build_parser().parse_args(["register", "--synthetic", "12"])
        assert defaults.field_source is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["register", "--synthetic", "12", "--field-source", "floppy"]
            )

    def test_register_memmaps_an_uncompressed_input(self, tmp_path, capsys):
        from repro.transport.sources import set_default_field_source

        problem = synthetic_registration_problem(12)
        path = tmp_path / "pair.npz"
        save_problem(path, problem.reference, problem.template, grid=problem.grid,
                     compress=False)
        try:
            code = main(
                [
                    "--verbose",
                    "register",
                    "--input", str(path),
                    "--field-source", "memmap",
                    "--max-newton", "2",
                    "--max-krylov", "4",
                ]
            )
        finally:
            set_default_field_source(None)
        assert code == 0
        out = capsys.readouterr().out
        assert "Registration summary" in out
        assert "field sources:" in out

    def test_register_compressed_input_degrades_with_a_warning(self, tmp_path, capsys):
        from repro.transport.sources import set_default_field_source

        problem = synthetic_registration_problem(12)
        path = tmp_path / "pair.npz"
        save_problem(path, problem.reference, problem.template, grid=problem.grid,
                     compress=True)
        try:
            code = main(
                [
                    "register",
                    "--input", str(path),
                    "--field-source", "memmap",
                    "--max-newton", "1",
                    "--max-krylov", "3",
                ]
            )
        finally:
            set_default_field_source(None)
        captured = capsys.readouterr()
        assert code == 0
        assert "loading resident instead" in captured.err
        assert "Registration summary" in captured.out

    def test_serve_memmaps_an_uncompressed_population(self, tmp_path, capsys):
        from repro.transport.sources import set_default_field_source

        population_path = tmp_path / "population.npz"
        problem = synthetic_registration_problem(8)
        np.savez(  # plain savez: stored members, mappable in place
            population_path,
            reference=problem.reference,
            subjects=np.stack([problem.template, problem.template], axis=0),
        )
        try:
            code = main(
                [
                    "serve",
                    "--input", str(population_path),
                    "--field-source", "memmap",
                    "--beta", "1e-1",
                    "--max-newton", "1",
                    "--max-krylov", "3",
                    "--num-workers", "1",
                ]
            )
        finally:
            set_default_field_source(None)
        assert code == 0
        assert "num_subjects" in capsys.readouterr().out
