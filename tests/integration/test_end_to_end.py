"""End-to-end integration tests across subsystems.

These tests exercise the same paths as the examples and the benchmark
harness, at the smallest resolutions that still produce meaningful results.
"""

import numpy as np
import pytest

from repro import SolverOptions, register
from repro.core.metrics import relative_residual
from repro.core.optim.gauss_newton import GaussNewtonKrylov
from repro.core.problem import RegistrationProblem
from repro.data.brain import warped_self_pair
from repro.data.synthetic import synthetic_registration_problem
from repro.parallel import (
    DistributedFFT,
    PencilDecomposition,
    ScatterInterpolationPlan,
    SimulatedCommunicator,
)
from repro.spectral.grid import Grid
from repro.transport.deformation import DeformationMap
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.semi_lagrangian import compute_departure_points
from repro.transport.solvers import TransportSolver

pytestmark = pytest.mark.slow


class TestSyntheticRecovery:
    """Register the paper's synthetic problem and check the paper's claims."""

    @pytest.fixture(scope="class")
    def result(self):
        problem = synthetic_registration_problem(16)
        options = SolverOptions(
            gradient_tolerance=1e-2, max_newton_iterations=8, max_krylov_iterations=20
        )
        return (
            problem,
            register(
                problem.template,
                problem.reference,
                beta=1e-2,
                options=options,
                grid=problem.grid,
            ),
        )

    def test_converges_to_gradient_tolerance(self, result):
        _, res = result
        assert res.converged

    def test_mismatch_reduced_substantially(self, result):
        _, res = result
        assert res.relative_residual < 0.6

    def test_map_is_diffeomorphic(self, result):
        _, res = result
        assert res.det_grad_stats["min"] > 0.0

    def test_warping_template_with_map_matches_transport(self, result):
        problem, res = result
        warped = res.deformation.warp(res.problem.template)
        rel = relative_residual(
            res.deformed_template, res.problem.template, warped, problem.grid
        )
        # rho_T(y1) computed via the deformation map agrees with the state
        # solve up to discretization error
        assert problem.grid.norm(warped - res.deformed_template) < 0.2 * problem.grid.norm(
            res.deformed_template
        )

    def test_recovered_velocity_reduces_objective_like_truth(self, result):
        problem, res = result
        reg_problem = RegistrationProblem(
            grid=problem.grid,
            reference=res.problem.reference,
            template=res.problem.template,
            beta=1e-2,
        )
        at_zero = reg_problem.evaluate_objective(reg_problem.zero_velocity()).total
        at_solution = reg_problem.evaluate_objective(res.velocity).total
        assert at_solution < 0.5 * at_zero


class TestKnownWarpRecovery:
    """Same-subject pair related by a known smooth warp: registration must
    recover most of the displacement."""

    def test_recovers_known_warp(self):
        pair = warped_self_pair(base_resolution=16, seed=3, warp_amplitude=0.25)
        options = SolverOptions(
            gradient_tolerance=1e-2, max_newton_iterations=10, max_krylov_iterations=30
        )
        result = register(
            pair.template, pair.reference, beta=1e-3, options=options, grid=pair.grid
        )
        assert result.relative_residual < 0.5
        assert result.det_grad_stats["min"] > 0.0


class TestDistributedConsistencyEndToEnd:
    """The distributed kernels reproduce the serial solver's building blocks
    on the actual fields that arise during a registration."""

    def test_distributed_kernels_match_serial_on_solver_fields(self):
        problem = synthetic_registration_problem(16)
        reg = RegistrationProblem(
            grid=problem.grid,
            reference=problem.reference,
            template=problem.template,
            beta=1e-2,
        )
        options = SolverOptions(max_newton_iterations=2, max_krylov_iterations=5)
        result = GaussNewtonKrylov(reg, options).solve()
        velocity = result.velocity
        grid = problem.grid

        deco = PencilDecomposition(grid.shape, 2, 2)
        comm = SimulatedCommunicator(deco.num_tasks)

        # distributed FFT of the deformed template
        dfft = DistributedFFT(deco, comm)
        deformed = result.final_iterate.deformed_template
        np.testing.assert_allclose(
            dfft.forward_global(deformed), np.fft.fftn(deformed), atol=1e-8
        )

        # distributed semi-Lagrangian interpolation at the solver's departure points
        departure = compute_departure_points(grid, velocity, dt=0.25)
        local_points = [
            departure[(slice(None), *deco.local_slices(rank))].reshape(3, -1)
            for rank in range(deco.num_tasks)
        ]
        plan = ScatterInterpolationPlan(grid, deco, comm, local_points)
        values = plan.interpolate(deco.scatter(deformed))
        serial = PeriodicInterpolator(grid, "catmull_rom")(deformed, departure)
        for rank in range(deco.num_tasks):
            np.testing.assert_allclose(
                values[rank], serial[deco.local_slices(rank)].reshape(-1), atol=1e-10
            )
        assert comm.ledger.bytes() > 0


class TestSelfConsistencyOfDataGeneration:
    def test_registering_identical_images_returns_zero_velocity(self):
        grid = Grid((12, 12, 12))
        transport = TransportSolver(grid)
        x1 = grid.coordinates()[0]
        image = 0.5 * (1 + np.sin(x1))
        options = SolverOptions(max_newton_iterations=5, max_krylov_iterations=10)
        result = register(image, image, beta=1e-2, options=options, grid=grid)
        assert grid.norm(result.velocity) < 1e-6
        assert result.num_newton_iterations == 0

    def test_deformation_of_true_velocity_reproduces_reference(self):
        problem = synthetic_registration_problem(16, num_time_steps=8)
        dmap = DeformationMap(problem.grid, problem.true_velocity, num_time_steps=8)
        warped = dmap.warp(problem.template)
        error = problem.grid.norm(warped - problem.reference) / problem.grid.norm(
            problem.reference
        )
        assert error < 0.05
