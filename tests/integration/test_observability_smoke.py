"""End-to-end observability smoke: trace a tiny registration, check the books.

Backs the ``observability-smoke`` CI job.  One small traced solve through
the real CLI produces every observability artifact the PR promises:

* a Chrome trace-event file that validates and is Perfetto-loadable;
* a versioned ``repro.observability-snapshot`` document;
* span totals that agree exactly with the independent work counters
  (FFT transforms, interpolation sweeps, Hessian matvecs).

Artifacts land in ``$REPRO_SMOKE_ARTIFACTS`` when set (the CI job sets it
and uploads the directory) and in pytest's tmp dir otherwise.
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.observability import (
    get_trace_recorder,
    snapshot,
    validate_chrome_trace,
    validate_snapshot,
)
from repro.observability.metrics import get_metrics_registry

RESOLUTION = 12
ARTIFACTS_ENV_VAR = "REPRO_SMOKE_ARTIFACTS"


@pytest.fixture()
def artifacts_dir(tmp_path) -> Path:
    override = os.environ.get(ARTIFACTS_ENV_VAR, "").strip()
    directory = Path(override) if override else tmp_path
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def _metric_total(name: str) -> float:
    series = get_metrics_registry().collect().get(name, {})
    return sum(series.values())


def test_traced_registration_smoke(artifacts_dir, capsys):
    recorder = get_trace_recorder()
    recorder.clear()
    trace_path = artifacts_dir / "smoke.trace.json"

    fft_before = _metric_total("fft.transforms")
    sweeps_before = _metric_total("interp.sweeps")

    code = main([
        "register",
        "--synthetic", str(RESOLUTION),
        "--max-newton", "2",
        "--max-krylov", "4",
        "--trace",
        "--trace-out", str(trace_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert f"trace written to {trace_path}" in out

    # ---- the Chrome trace validates and covers the hot seams ---------- #
    document = json.loads(trace_path.read_text())
    validate_chrome_trace(document)
    events = document["traceEvents"]
    assert events, "traced solve produced no events"
    names = {event["name"] for event in events}
    for expected in (
        "registration.solve",
        "newton.iteration",
        "pcg.matvec",
        "fft.forward",
        "interp.gather",
        "transport.state",
    ):
        assert expected in names, f"missing span {expected!r}"

    # ---- span totals agree with the independent work counters --------- #
    counts = recorder.span_counts()
    fft_spans = counts.get("fft.forward", 0) + counts.get("fft.backward", 0)
    assert fft_spans == _metric_total("fft.transforms") - fft_before
    assert counts.get("interp.gather", 0) == _metric_total("interp.sweeps") - sweeps_before
    assert counts.get("registration.solve") == 1

    # ---- the snapshot document validates and round-trips -------------- #
    snapshot_path = artifacts_dir / "smoke.snapshot.json"
    document = snapshot()
    validate_snapshot(document)
    assert document["trace"]["enabled"] is True
    assert document["trace"]["spans"] == len(recorder)
    snapshot_path.write_text(json.dumps(document, indent=2, sort_keys=True))
    validate_snapshot(json.loads(snapshot_path.read_text()))
