#!/usr/bin/env python
"""Demonstration of the distributed-memory kernels (Sec. III-C of the paper).

Runs the two dominant kernels of the solver on the simulated distributed
machine — the pencil-decomposed 3D FFT (AccFFT-style transposes) and the
semi-Lagrangian scatter interpolation (Algorithm 1) — on a small grid with
several process-grid configurations, verifies them against the serial
kernels, and prints the communication ledger (messages and bytes moved per
category), which is what the analytic performance model consumes.

Run with::

    python examples/distributed_kernels_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_rows
from repro.data.synthetic import sinusoidal_template, synthetic_velocity
from repro.parallel import (
    DistributedFFT,
    PencilDecomposition,
    ScatterInterpolationPlan,
    SimulatedCommunicator,
)
from repro.spectral.grid import Grid
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.semi_lagrangian import compute_departure_points


def main() -> None:
    grid = Grid((32, 32, 32))
    field = sinusoidal_template(grid)
    velocity = synthetic_velocity(grid)
    departure = compute_departure_points(grid, velocity, dt=0.25)
    serial_interp = PeriodicInterpolator(grid, "catmull_rom")
    serial_values = serial_interp(field, departure)
    serial_spectrum = np.fft.fftn(field)

    rows = []
    for p1, p2 in ((1, 2), (2, 2), (2, 4), (4, 4)):
        deco = PencilDecomposition(grid.shape, p1, p2)
        comm = SimulatedCommunicator(deco.num_tasks)

        # distributed FFT, verified against numpy
        dfft = DistributedFFT(deco, comm)
        spectrum = dfft.forward_global(field)
        fft_error = float(np.max(np.abs(spectrum - serial_spectrum)) / np.max(np.abs(serial_spectrum)))

        # distributed semi-Lagrangian interpolation, verified against the serial kernel
        local_points = [
            departure[(slice(None), *deco.local_slices(rank))].reshape(3, -1)
            for rank in range(deco.num_tasks)
        ]
        plan = ScatterInterpolationPlan(grid, deco, comm, local_points)
        values = plan.interpolate(deco.scatter(field))
        serial_blocks = [
            serial_values[deco.local_slices(rank)].reshape(-1) for rank in range(deco.num_tasks)
        ]
        interp_error = float(
            max(np.max(np.abs(v - s)) for v, s in zip(values, serial_blocks))
        )

        ledger = comm.ledger
        rows.append(
            {
                "tasks": deco.num_tasks,
                "process_grid": f"{p1}x{p2}",
                "fft_error": fft_error,
                "interp_error": interp_error,
                "fft_transpose_MB": ledger.bytes("fft_transpose") / 1e6,
                "ghost_MB": ledger.bytes("ghost_exchange") / 1e6,
                "scatter_MB": (ledger.bytes("interp_scatter") + ledger.bytes("interp_return")) / 1e6,
                "messages": ledger.messages(),
            }
        )

    print(format_rows(rows, title="Distributed kernels vs serial kernels (32^3 grid)"))
    print()
    print("Both kernels reproduce the serial results to machine precision;")
    print("the ledger columns are the communication volumes the performance model uses.")


if __name__ == "__main__":
    main()
