#!/usr/bin/env python
"""Multi-subject brain registration (the paper's real-world experiment).

Registers the two "subjects" of the procedural brain phantom (the offline
substitute for the NIREP na01/na02 pair, see DESIGN.md), reproducing the
setup of Sec. IV-C: gtol = 1e-2, beta continuation down to a small
regularization weight, Gauss-Newton Hessian.  Prints the per-slice residual
reduction and det(grad y1) ranges that Fig. 7 visualizes.

Run with::

    python examples/brain_registration.py [base_resolution]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import SolverOptions
from repro.analysis.reporting import format_rows
from repro.core.registration import RegistrationSolver
from repro.data.brain import brain_registration_pair


def main(base_resolution: int = 32) -> None:
    print(f"Generating a multi-subject brain-phantom pair (base resolution {base_resolution}) ...")
    pair = brain_registration_pair(base_resolution=base_resolution, seed=42)
    print(f"  grid: {pair.grid.shape} (NIREP-like aspect ratio), "
          f"initial mismatch {pair.initial_residual:.4f}")

    options = SolverOptions(
        gradient_tolerance=1e-2,
        max_newton_iterations=20,
        max_krylov_iterations=50,
    )
    solver = RegistrationSolver(beta=1e-3, options=options)
    print("Registering subject B (template) onto subject A (reference) ...")
    result = solver.run(pair.template, pair.reference, grid=pair.grid)

    print()
    print(format_rows([result.summary()], title="Registration summary"))

    # per-slice report, as in Fig. 7
    reference = result.problem.reference
    template = result.problem.template
    deformed = result.deformed_template
    det = result.deformation.determinant()
    rows = []
    n_axial = pair.grid.shape[1]
    for fraction in (0.45, 0.5, 0.6):
        index = min(n_axial - 1, int(round(fraction * n_axial)))
        before = float(np.linalg.norm(reference[:, index, :] - template[:, index, :]))
        after = float(np.linalg.norm(reference[:, index, :] - deformed[:, index, :]))
        rows.append(
            {
                "axial_slice": index,
                "residual_before": before,
                "residual_after": after,
                "det_min": float(det[:, index, :].min()),
                "det_max": float(det[:, index, :].max()),
            }
        )
    print()
    print(format_rows(rows, title="Per-slice residual and det(grad y1) (cf. paper Fig. 7)"))
    print()
    if result.is_diffeomorphic:
        print("det(grad y1) is strictly positive everywhere: the map is diffeomorphic.")
    else:
        print("WARNING: the deformation map is not diffeomorphic; increase beta.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
