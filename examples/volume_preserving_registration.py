#!/usr/bin/env python
"""Volume-preserving (incompressible) registration.

The paper's most challenging setting: the velocity is constrained to be
divergence free, which makes the deformation map locally volume preserving
("mass preserving" in the medical-imaging jargon; Table III uses this
configuration).  This example registers the divergence-free synthetic
problem, verifies that det(grad y1) stays equal to one, and compares the
outcome with an unconstrained registration of the same pair.

Run with::

    python examples/volume_preserving_registration.py [resolution]
"""

from __future__ import annotations

import sys

from repro import SolverOptions, register
from repro.analysis.reporting import format_rows
from repro.data.synthetic import synthetic_registration_problem


def run_case(problem, incompressible: bool):
    options = SolverOptions(
        gradient_tolerance=1e-2,
        max_newton_iterations=10,
        max_krylov_iterations=50,
    )
    result = register(
        problem.template,
        problem.reference,
        beta=1e-2,
        incompressible=incompressible,
        options=options,
        grid=problem.grid,
    )
    return {
        "constraint": "div v = 0" if incompressible else "none",
        "relative_residual": result.relative_residual,
        "newton_iterations": result.num_newton_iterations,
        "hessian_matvecs": result.num_hessian_matvecs,
        "det_grad_min": result.det_grad_stats["min"],
        "det_grad_max": result.det_grad_stats["max"],
        "volume_change_max": result.det_grad_stats["deviation_from_volume_preservation"]
        if "deviation_from_volume_preservation" in result.det_grad_stats
        else max(abs(result.det_grad_stats["min"] - 1), abs(result.det_grad_stats["max"] - 1)),
    }


def main(resolution: int = 24) -> None:
    print(f"Building the incompressible synthetic problem at {resolution}^3 ...")
    problem = synthetic_registration_problem(resolution, incompressible=True)
    print(f"  initial mismatch: {problem.initial_residual:.4f}")

    print("Registering with and without the incompressibility constraint ...")
    rows = [run_case(problem, incompressible=True), run_case(problem, incompressible=False)]
    print()
    print(format_rows(rows, title="Volume-preserving vs unconstrained registration"))
    print()
    constrained = rows[0]
    print(
        "With the Leray projection the Jacobian determinant stays within "
        f"[{constrained['det_grad_min']:.3f}, {constrained['det_grad_max']:.3f}] "
        "(exactly volume preserving up to discretization error)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 24)
