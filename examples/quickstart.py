#!/usr/bin/env python
"""Quickstart: register the paper's synthetic problem (Fig. 5).

Builds the analytic template/reference pair of Sec. IV-A1, runs the
preconditioned inexact Gauss-Newton-Krylov solver, and prints the
convergence history plus the deformation diagnostics the paper reports
(residual reduction and the determinant of the deformation gradient).

Run with::

    python examples/quickstart.py [resolution]
"""

from __future__ import annotations

import sys

from repro import SolverOptions, register
from repro.analysis.reporting import format_rows
from repro.data.synthetic import synthetic_registration_problem


def main(resolution: int = 32) -> None:
    print(f"Building the synthetic registration problem at {resolution}^3 ...")
    problem = synthetic_registration_problem(resolution)
    print(f"  initial L2 mismatch: {problem.initial_residual:.4f}")

    options = SolverOptions(
        gradient_tolerance=1e-2,     # the paper's gtol
        max_newton_iterations=10,
        max_krylov_iterations=50,
        verbose=False,
    )
    print("Running the Gauss-Newton-Krylov solver (beta = 1e-2, nt = 4) ...")
    result = register(
        problem.template,
        problem.reference,
        beta=1e-2,
        num_time_steps=4,
        options=options,
        grid=problem.grid,
    )

    print()
    print(format_rows(result.optimization.convergence_table(), title="Convergence history"))
    print()
    print(format_rows([result.summary()], title="Registration summary"))
    print()
    det = result.det_grad_stats
    print(
        f"det(grad y1) in [{det['min']:.3f}, {det['max']:.3f}] -> "
        f"{'diffeomorphic' if result.is_diffeomorphic else 'NOT diffeomorphic'}"
    )
    print(
        f"residual reduced from {result.residual_before:.4f} to {result.residual_after:.4f} "
        f"({100 * (1 - result.relative_residual):.1f}% of the mismatch removed)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
