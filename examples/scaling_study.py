#!/usr/bin/env python
"""Regenerate the paper's scaling study (Tables I-IV) from the performance model.

Measures the algorithmic work (Newton iterations, Hessian mat-vecs) with the
real solver on the synthetic problem at laptop scale, then projects the
wall-clock rows of every scaling table with the calibrated machine model and
prints them next to the paper's reference numbers.

Run with::

    python examples/scaling_study.py
"""

from __future__ import annotations

from repro.analysis.experiments import (
    measure_solver_iterations,
    reproduce_scaling_table,
)
from repro.analysis.reporting import format_breakdown_table, format_rows


def main() -> None:
    print("Measuring the solver's algorithmic work on the synthetic problem (24^3) ...")
    counts = measure_solver_iterations(resolution=24, num_newton_iterations=2)
    print(format_rows([counts], title="Measured work (2 Gauss-Newton iterations)"))
    print()

    for table, description in (
        ("I", "synthetic problem, Maverick, 16 tasks/node"),
        ("II", "synthetic problem, Stampede, 2 tasks/node"),
        ("III", "incompressible synthetic problem, Maverick, 2 tasks/node"),
        ("IV", "brain images (256x300x256), Maverick"),
    ):
        entries = reproduce_scaling_table(
            table,
            num_newton_iterations=counts["newton_iterations"],
            num_hessian_matvecs=max(counts["hessian_matvecs"], 1),
        )
        print(
            format_breakdown_table(
                entries, title=f"Table {table} ({description}): paper vs model projection"
            )
        )
        print()


if __name__ == "__main__":
    main()
